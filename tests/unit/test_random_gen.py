"""Unit tests for the random application generator."""

import random

import pytest

from repro.errors import ConfigError
from repro.graph import (
    GraphGenConfig,
    enumerate_paths,
    random_graph,
    total_probability,
    validate_graph,
)


class TestGeneratedGraphs:
    @pytest.mark.parametrize("seed", range(15))
    def test_always_valid(self, seed):
        g = random_graph(random.Random(seed))
        st = validate_graph(g)  # raises on any structural problem
        assert total_probability(st) == pytest.approx(1.0)

    def test_deterministic_for_seed(self):
        a = random_graph(random.Random(99))
        b = random_graph(random.Random(99))
        assert a.node_names == b.node_names
        assert a.edges() == b.edges()

    def test_different_seeds_differ(self):
        a = random_graph(random.Random(1))
        b = random_graph(random.Random(2))
        assert a.node_names != b.node_names or a.edges() != b.edges()

    def test_or_depth_zero_yields_single_section(self):
        cfg = GraphGenConfig(or_depth=0)
        g = random_graph(random.Random(5), cfg)
        st = validate_graph(g)
        assert len(st.sections) == 1
        assert len(enumerate_paths(st)) == 1

    def test_alpha_controls_acet(self):
        cfg = GraphGenConfig(alpha=0.5, alpha_jitter=0.0)
        g = random_graph(random.Random(3), cfg)
        for node in g.computation_nodes():
            assert node.acet == pytest.approx(0.5 * node.wcet)

    def test_wcet_range_respected(self):
        cfg = GraphGenConfig(wcet_lo=3.0, wcet_hi=4.0)
        g = random_graph(random.Random(7), cfg)
        for node in g.computation_nodes():
            assert 3.0 <= node.wcet <= 4.0

    def test_branchy_config_produces_or_nodes(self):
        cfg = GraphGenConfig(or_depth=3, p_branch=1.0)
        g = random_graph(random.Random(11), cfg)
        assert g.or_nodes()


class TestConfigValidation:
    @pytest.mark.parametrize("kwargs", [
        {"or_depth": -1},
        {"p_branch": 1.5},
        {"max_branches": 1},
        {"min_tasks": 5, "max_tasks": 2},
        {"max_width": 0},
        {"wcet_lo": -1.0},
        {"wcet_lo": 5.0, "wcet_hi": 2.0},
        {"alpha": 0.0},
        {"alpha": 1.5},
    ])
    def test_invalid_config_rejected(self, kwargs):
        with pytest.raises(ConfigError):
            GraphGenConfig(**kwargs)
