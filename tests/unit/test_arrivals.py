"""Arrival-process unit tests: seeding, traces and factory validation.

The online simulator's replayability rests on this module: the same
seed must yield the same arrival instants, the arrival stream must be
independent of the realization stream, and trace inputs must be
validated before they reach the admission ledger.
"""

import json

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.sim.arrivals import (
    ARRIVAL_KINDS,
    BurstyArrivals,
    PoissonArrivals,
    TraceArrivals,
    arrival_rng,
    load_arrival_trace,
    make_arrival_process,
)


class TestArrivalRng:
    def test_deterministic_in_seed(self):
        a = arrival_rng(7).standard_normal(16)
        b = arrival_rng(7).standard_normal(16)
        assert np.array_equal(a, b)

    def test_independent_of_realization_stream(self):
        # the derived stream must not alias default_rng(seed): consuming
        # arrivals may never perturb the job realizations
        derived = arrival_rng(2002).standard_normal(16)
        direct = np.random.default_rng(2002).standard_normal(16)
        assert not np.array_equal(derived, direct)

    def test_distinct_seeds_differ(self):
        a = arrival_rng(1).standard_normal(16)
        b = arrival_rng(2).standard_normal(16)
        assert not np.array_equal(a, b)


class TestPoisson:
    def test_replay_is_bit_identical(self):
        p = PoissonArrivals(rate=1.5)
        a = p.sample(50.0, arrival_rng(3))
        b = p.sample(50.0, arrival_rng(3))
        assert np.array_equal(a, b)

    def test_sorted_within_horizon(self):
        times = PoissonArrivals(2.0).sample(30.0, arrival_rng(0))
        assert times.size > 0
        assert np.all(np.diff(times) >= 0)
        assert float(times.min()) >= 0.0
        assert float(times.max()) < 30.0

    def test_zero_rate_is_empty(self):
        assert PoissonArrivals(0.0).sample(100.0, arrival_rng(0)).size == 0

    def test_negative_rate_rejected(self):
        with pytest.raises(ConfigError, match="rate"):
            PoissonArrivals(-0.1)

    def test_mean_count_tracks_rate(self):
        # rate * horizon = 200 expected arrivals; a fixed seed keeps
        # this deterministic, the wide band keeps it non-flaky
        times = PoissonArrivals(2.0).sample(100.0, arrival_rng(11))
        assert 140 < times.size < 260

    def test_horizon_extension_preserves_prefix(self):
        # gaps are drawn one at a time, so a longer horizon replays the
        # same prefix — the property the online monotonicity tests use
        p = PoissonArrivals(1.0)
        short = p.sample(20.0, arrival_rng(5))
        long = p.sample(60.0, arrival_rng(5))
        assert np.array_equal(short, long[: short.size])
        assert np.all(long[short.size:] >= 20.0)


class TestBursty:
    def test_replay_is_bit_identical(self):
        p = BurstyArrivals(rate=1.0, burstiness=1.8, dwell=5.0)
        a = p.sample(40.0, arrival_rng(9))
        b = p.sample(40.0, arrival_rng(9))
        assert np.array_equal(a, b)

    def test_sorted_within_horizon(self):
        times = BurstyArrivals(1.5).sample(40.0, arrival_rng(1))
        assert times.size > 0
        assert np.all(np.diff(times) >= 0)
        assert float(times.max()) < 40.0

    def test_burstiness_bounds(self):
        with pytest.raises(ConfigError, match="burstiness"):
            BurstyArrivals(1.0, burstiness=0.9)
        with pytest.raises(ConfigError, match="burstiness"):
            BurstyArrivals(1.0, burstiness=2.1)
        BurstyArrivals(1.0, burstiness=1.0)  # degenerate Poisson: valid
        BurstyArrivals(1.0, burstiness=2.0)  # on/off source: valid

    def test_dwell_must_be_positive(self):
        with pytest.raises(ConfigError, match="dwell"):
            BurstyArrivals(1.0, dwell=0.0)

    def test_zero_rate_is_empty(self):
        assert BurstyArrivals(0.0).sample(50.0, arrival_rng(0)).size == 0


class TestTrace:
    def test_unsorted_input_is_sorted(self):
        p = TraceArrivals([5.0, 1.0, 3.0])
        out = p.sample(10.0, arrival_rng(0))
        assert np.array_equal(out, [1.0, 3.0, 5.0])

    def test_clipped_to_horizon(self):
        p = TraceArrivals([0.0, 2.0, 9.0, 11.0])
        assert np.array_equal(p.sample(9.0, arrival_rng(0)), [0.0, 2.0])

    def test_rng_never_consulted(self):
        p = TraceArrivals([0.5, 1.5])
        rng = arrival_rng(4)
        before = rng.bit_generator.state
        p.sample(10.0, rng)
        assert rng.bit_generator.state == before

    def test_negative_times_rejected(self):
        with pytest.raises(ConfigError, match=">= 0"):
            TraceArrivals([1.0, -0.5])

    def test_nested_input_rejected(self):
        with pytest.raises(ConfigError, match="flat"):
            TraceArrivals([[0.0, 1.0], [2.0, 3.0]])


class TestLoadTrace:
    def test_bare_list(self, tmp_path):
        path = tmp_path / "trace.json"
        path.write_text(json.dumps([0.0, 1.7, 3.2]))
        assert load_arrival_trace(str(path)) == [0.0, 1.7, 3.2]

    def test_arrivals_object(self, tmp_path):
        path = tmp_path / "trace.json"
        path.write_text(json.dumps({"arrivals": [2, 4.5]}))
        assert load_arrival_trace(str(path)) == [2.0, 4.5]

    @pytest.mark.parametrize("payload", [
        {"other": [1.0]},          # missing the arrivals key
        [1.0, "soon"],             # non-numeric entry
        [1.0, True],               # bool is not a time
        "0.0, 1.0",                # not a list at all
    ])
    def test_malformed_payload_rejected(self, tmp_path, payload):
        path = tmp_path / "trace.json"
        path.write_text(json.dumps(payload))
        with pytest.raises(ConfigError, match="arrival times"):
            load_arrival_trace(str(path))


class TestFactory:
    def test_kinds_map_to_processes(self):
        assert isinstance(make_arrival_process("poisson", 1.0),
                          PoissonArrivals)
        assert isinstance(make_arrival_process("bursty", 1.0),
                          BurstyArrivals)
        assert isinstance(
            make_arrival_process("trace", 1.0, trace=[0.0, 1.0]),
            TraceArrivals)

    def test_every_registered_kind_constructs(self):
        for kind in ARRIVAL_KINDS:
            proc = make_arrival_process(kind, 0.5, trace=[0.0])
            assert proc.kind == kind
            assert kind in proc.describe()

    def test_unknown_kind_rejected(self):
        with pytest.raises(ConfigError, match="arrival kind"):
            make_arrival_process("adversarial", 1.0)

    def test_trace_without_times_rejected(self):
        with pytest.raises(ConfigError, match="trace"):
            make_arrival_process("trace", 1.0)
