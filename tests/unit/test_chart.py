"""Unit tests for ASCII chart rendering."""

import pytest

from repro.errors import ConfigError
from repro.experiments import render_chart, render_charts
from repro.types import ExperimentPoint, SeriesResult


def make_series(values):
    """values: {scheme: [(x, mean), ...]}"""
    s = SeriesResult(name="chart-test", x_label="load")
    for scheme, pts in values.items():
        for x, mean in pts:
            s.points.append(ExperimentPoint(x=x, scheme=scheme,
                                            mean=mean, std=0.0, n_runs=1))
    return s


@pytest.fixture
def series():
    return make_series({
        "SPM": [(0.1, 0.9), (0.5, 0.6), (1.0, 1.0)],
        "GSS": [(0.1, 0.9), (0.5, 0.4), (1.0, 1.0)],
    })


class TestRenderChart:
    def test_contains_glyphs_and_legend(self, series):
        text = render_chart(series)
        assert "o SPM" in text and "x GSS" in text
        assert "o" in text and "x" in text

    def test_axis_labels(self, series):
        text = render_chart(series)
        assert "0.1" in text and "1" in text  # x range
        assert "load" in text

    def test_y_range_override(self, series):
        text = render_chart(series, y_range=(0.0, 1.0))
        assert "1.000" in text and "0.000" in text

    def test_height_and_width_respected(self, series):
        text = render_chart(series, width=30, height=8)
        lines = [ln for ln in text.splitlines() if ln.endswith("|")]
        assert len(lines) == 8
        assert all(len(ln) == 8 + 1 + 30 + 1 for ln in lines)

    def test_scheme_subset(self, series):
        text = render_chart(series, schemes=["GSS"])
        assert "GSS" in text and "SPM" not in text

    def test_extreme_points_hit_borders(self):
        s = make_series({"A": [(0.0, 0.0), (1.0, 1.0)]})
        text = render_chart(s, y_range=(0.0, 1.0), width=20, height=6)
        rows = [ln for ln in text.splitlines() if ln.endswith("|")]
        assert rows[0].rstrip("|").endswith("o")   # max at top right
        assert rows[-1][9] == "o"                  # min at bottom left

    def test_render_charts_joins(self, series):
        text = render_charts([series, series])
        assert text.count("# chart-test") == 2


class TestChartErrors:
    def test_too_small_canvas(self, series):
        with pytest.raises(ConfigError, match="width"):
            render_chart(series, width=4)

    def test_single_point_rejected(self):
        s = make_series({"A": [(0.5, 0.5)]})
        with pytest.raises(ConfigError, match="two x values"):
            render_chart(s)

    def test_empty_series_rejected(self):
        with pytest.raises(ConfigError, match="no schemes"):
            render_chart(SeriesResult(name="e", x_label="x"))

    def test_bad_y_range(self, series):
        with pytest.raises(ConfigError, match="empty y range"):
            render_chart(series, y_range=(1.0, 1.0))
