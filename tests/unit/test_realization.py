"""Unit tests for realization sampling."""

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.graph import validate_graph
from repro.sim import sample_realization, sample_realizations, worst_case_realization
from tests.conftest import build_nested_or_graph, build_or_graph


class TestSampling:
    def test_actuals_within_bounds(self, or_structure, rng):
        graph = or_structure.graph
        for _ in range(200):
            rl = sample_realization(or_structure, rng)
            for node in graph.computation_nodes():
                a = rl.actual(node.name)
                assert 0 < a <= node.wcet

    def test_mean_near_acet(self, or_structure):
        rng = np.random.default_rng(0)
        samples = [sample_realization(or_structure, rng).actual("A")
                   for _ in range(3000)]
        node = or_structure.graph.node("A")
        # clipping skews slightly; stay within 5% of the ACET
        assert np.mean(samples) == pytest.approx(node.acet, rel=0.05)

    def test_zero_variance_when_acet_equals_wcet(self):
        from repro.graph import GraphBuilder
        b = GraphBuilder("det")
        b.task("A", 10, 10)
        st = validate_graph(b.build_graph())
        rng = np.random.default_rng(1)
        for _ in range(10):
            assert sample_realization(st, rng).actual("A") == 10

    def test_choice_frequencies_match_probabilities(self, or_structure):
        rng = np.random.default_rng(7)
        b_sid = or_structure.section_of_node("B").id
        hits = sum(
            sample_realization(or_structure, rng).choices["O1"] == b_sid
            for _ in range(5000))
        assert hits / 5000 == pytest.approx(0.3, abs=0.02)

    def test_choices_cover_all_branching_ors(self):
        st = validate_graph(build_nested_or_graph())
        rng = np.random.default_rng(3)
        rl = sample_realization(st, rng)
        assert set(rl.choices) >= {"O1", "O3"}

    def test_determinism_per_seed(self, or_structure):
        a = sample_realization(or_structure, np.random.default_rng(5))
        b = sample_realization(or_structure, np.random.default_rng(5))
        assert a.actuals == b.actuals
        assert a.choices == b.choices

    def test_sample_many(self, or_structure, rng):
        rls = list(sample_realizations(or_structure, rng, 5))
        assert len(rls) == 5
        assert rls[0].actuals != rls[1].actuals

    def test_missing_actual_raises(self, or_structure, rng):
        rl = sample_realization(or_structure, rng)
        with pytest.raises(SimulationError, match="no actual time"):
            rl.actual("nonexistent")

    def test_sigma_fraction_zero_is_deterministic(self, or_structure):
        rng = np.random.default_rng(5)
        rl = sample_realization(or_structure, rng, sigma_fraction=0.0)
        for node in or_structure.graph.computation_nodes():
            assert rl.actual(node.name) == pytest.approx(node.acet)


class TestWorstCase:
    def test_worst_case_actuals(self, or_structure):
        rl = worst_case_realization(or_structure)
        for node in or_structure.graph.computation_nodes():
            assert rl.actual(node.name) == node.wcet

    def test_worst_case_takes_longest_branch(self, or_structure):
        rl = worst_case_realization(or_structure)
        b_sid = or_structure.section_of_node("B").id
        assert rl.choices["O1"] == b_sid  # B (wcet 8) > C (wcet 5)


class TestBatchSampling:
    def test_batch_matches_bounds(self, or_structure, rng):
        from repro.sim.realization import sample_realization_batch
        batch = sample_realization_batch(or_structure, rng, 100)
        assert len(batch) == 100
        graph = or_structure.graph
        for rl in batch:
            for node in graph.computation_nodes():
                assert 0 < rl.actual(node.name) <= node.wcet
            assert "O1" in rl.choices

    def test_batch_distribution_matches_sequential(self, or_structure):
        """Same mean/std and branch frequencies as the per-run sampler."""
        from repro.sim.realization import (
            sample_realization,
            sample_realization_batch,
        )
        n = 4000
        rng1 = np.random.default_rng(1)
        rng2 = np.random.default_rng(2)
        seq = [sample_realization(or_structure, rng1) for _ in range(n)]
        bat = sample_realization_batch(or_structure, rng2, n)
        a_seq = np.array([r.actual("A") for r in seq])
        a_bat = np.array([r.actual("A") for r in bat])
        assert a_bat.mean() == pytest.approx(a_seq.mean(), rel=0.03)
        assert a_bat.std() == pytest.approx(a_seq.std(), rel=0.10)
        b_sid = or_structure.section_of_node("B").id
        f_seq = np.mean([r.choices["O1"] == b_sid for r in seq])
        f_bat = np.mean([r.choices["O1"] == b_sid for r in bat])
        assert f_bat == pytest.approx(f_seq, abs=0.03)

    def test_batch_deterministic_per_seed(self, or_structure):
        from repro.sim.realization import sample_realization_batch
        a = sample_realization_batch(or_structure,
                                     np.random.default_rng(9), 5)
        b = sample_realization_batch(or_structure,
                                     np.random.default_rng(9), 5)
        for x, y in zip(a, b):
            assert x.actuals == y.actuals and x.choices == y.choices

    def test_invalid_batch_size(self, or_structure, rng):
        from repro.errors import SimulationError
        from repro.sim.realization import sample_realization_batch
        with pytest.raises(SimulationError):
            sample_realization_batch(or_structure, rng, 0)

    def test_sigma_clamp_matches_per_run_sampler(self):
        """Regression: a task with acet == wcet (zero-width distribution)
        must sample deterministically at its WCET in the batch sampler,
        exactly like the per-run sampler — the two share the same
        ``max(sigma, 0)`` clamp."""
        from repro.graph import GraphBuilder
        from repro.sim.realization import (
            sample_realization,
            sample_realization_batch,
        )
        b = GraphBuilder("det-mixed")
        b.task("A", 10, 10)            # acet == wcet: no variance at all
        b.task("B", 20, 8, after=["A"])
        st = validate_graph(b.build_graph())
        batch = sample_realization_batch(st, np.random.default_rng(4), 50)
        assert np.all(batch.actuals[:, batch.column_of("A")] == 10.0)
        assert np.all(batch.actuals[:, batch.column_of("B")] <= 20.0)
        rng = np.random.default_rng(4)
        for _ in range(10):
            assert sample_realization(st, rng).actual("A") == 10.0
