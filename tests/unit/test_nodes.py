"""Unit tests for repro.graph.nodes."""

import pytest

from repro.graph.nodes import Node, NodeKind, and_node, computation, or_node
from repro.types import TaskStats


class TestTaskStats:
    def test_alpha_ratio(self):
        assert TaskStats(wcet=10, acet=5).alpha == 0.5

    def test_acet_equal_wcet_allowed(self):
        s = TaskStats(wcet=4, acet=4)
        assert s.alpha == 1.0

    @pytest.mark.parametrize("wcet,acet", [(0, 1), (-1, 1), (5, 0),
                                           (5, -2), (5, 6)])
    def test_invalid_stats_rejected(self, wcet, acet):
        with pytest.raises(ValueError):
            TaskStats(wcet=wcet, acet=acet)


class TestNodeConstruction:
    def test_computation_node(self):
        n = computation("A", 8, 5)
        assert n.is_computation and not n.is_and and not n.is_or
        assert n.wcet == 8 and n.acet == 5
        assert n.label() == "A 8/5"

    def test_and_node_zero_times(self):
        n = and_node("A1")
        assert n.is_and
        assert n.wcet == 0.0 and n.acet == 0.0
        assert "AND" in n.label()

    def test_or_node_zero_times(self):
        n = or_node("O1")
        assert n.is_or
        assert n.wcet == 0.0 and n.acet == 0.0
        assert "OR" in n.label()

    def test_computation_requires_stats(self):
        with pytest.raises(ValueError, match="requires TaskStats"):
            Node("A", NodeKind.COMPUTATION)

    def test_sync_rejects_stats(self):
        with pytest.raises(ValueError, match="must not carry"):
            Node("A1", NodeKind.AND, TaskStats(wcet=1, acet=1))

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError, match="non-empty"):
            Node("", NodeKind.OR)

    def test_nodes_are_frozen(self):
        n = computation("A", 8, 5)
        with pytest.raises(AttributeError):
            n.name = "B"  # type: ignore[misc]

    def test_kind_enum_values(self):
        assert NodeKind("computation") is NodeKind.COMPUTATION
        assert NodeKind("and") is NodeKind.AND
        assert NodeKind("or") is NodeKind.OR
