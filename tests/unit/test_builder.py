"""Unit tests for the fluent GraphBuilder."""

import pytest

from repro.errors import GraphError, ValidationError
from repro.graph import GraphBuilder


class TestBasicBuilding:
    def test_task_chain(self):
        b = GraphBuilder("c")
        b.chain([("A", 4, 2), ("B", 6, 3), ("C", 2, 1)])
        g = b.build_graph()
        assert g.successors("A") == ["B"]
        assert g.successors("B") == ["C"]

    def test_chain_after_existing(self):
        b = GraphBuilder()
        b.task("root", 1, 1)
        b.chain([("A", 4, 2)], after=["root"])
        assert b.graph.predecessors("A") == ["root"]

    def test_task_after_string_shorthand(self):
        b = GraphBuilder()
        b.task("A", 1, 1)
        b.task("B", 1, 1, after="A")
        assert b.graph.predecessors("B") == ["A"]

    def test_edges_bulk(self):
        b = GraphBuilder()
        b.task("A", 1, 1)
        b.task("B", 1, 1)
        b.task("C", 1, 1)
        b.edges([("A", "B"), ("A", "C")])
        assert set(b.graph.successors("A")) == {"B", "C"}


class TestStructuredHelpers:
    def test_and_split_join(self):
        b = GraphBuilder()
        b.task("A", 8, 5)
        b.and_split("A1", after="A", branches=[("B", 5, 3), ("C", 4, 2)])
        b.and_join("A2", ["B", "C"])
        g = b.build_graph()
        assert set(g.successors("A1")) == {"B", "C"}
        assert set(g.predecessors("A2")) == {"B", "C"}

    def test_or_branch_sets_probabilities(self):
        b = GraphBuilder()
        b.task("A", 8, 5)
        b.or_branch("O1", after="A",
                    paths={"B": ((5, 3), 0.4), "C": ((4, 2), 0.6)})
        b.or_merge("O2", ["B", "C"])
        b.task("D", 2, 1, after=["O2"])
        g = b.build_graph()
        assert g.branch_probabilities("O1") == {"B": 0.4, "C": 0.6}

    def test_probabilities_bulk(self):
        b = GraphBuilder()
        b.task("A", 1, 1)
        b.or_node("O", after=["A"])
        b.task("B", 1, 1, after=["O"])
        b.task("C", 1, 1, after=["O"])
        b.probabilities("O", {"B": 0.25, "C": 0.75})
        b.or_merge("Om", ["B", "C"])
        g = b.build_graph()
        assert g.branch_probabilities("O")["C"] == 0.75

    def test_join_requires_predecessors(self):
        b = GraphBuilder()
        with pytest.raises(GraphError, match="at least one"):
            b.and_join("J", [])
        with pytest.raises(GraphError, match="at least one"):
            b.or_merge("M", [])


class TestBuild:
    def test_build_returns_validated_application(self):
        b = GraphBuilder("app")
        b.task("A", 4, 2)
        app = b.build(deadline=10, meta={"x": 1})
        assert app.deadline == 10
        assert app.meta == {"x": 1}

    def test_build_rejects_invalid_graph(self):
        b = GraphBuilder()
        b.task("A", 1, 1)
        b.or_node("O", after=["A"])
        b.task("B", 1, 1, after=["O"])
        b.task("C", 1, 1, after=["O"])  # probabilities missing
        with pytest.raises(ValidationError):
            b.build(deadline=10)

    def test_build_graph_rejects_empty(self):
        with pytest.raises(ValidationError, match="empty"):
            GraphBuilder().build_graph()
