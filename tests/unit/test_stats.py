"""Unit tests for the experiment statistics helpers."""

import numpy as np
import pytest

from repro.experiments import paired_ratio, summarize, summarize_all


class TestSummarize:
    def test_mean_and_std(self):
        p = summarize(0.5, "GSS", np.array([0.4, 0.6]))
        assert p.mean == pytest.approx(0.5)
        assert p.std == pytest.approx(np.std([0.4, 0.6], ddof=1))
        assert p.n_runs == 2
        assert p.scheme == "GSS" and p.x == 0.5

    def test_single_sample_has_zero_spread(self):
        p = summarize(1.0, "NPM", np.array([0.7]))
        assert p.std == 0.0 and p.ci95 == 0.0

    def test_ci_shrinks_with_n(self):
        rng = np.random.default_rng(0)
        small = summarize(0, "x", rng.normal(1, 0.1, 10))
        large = summarize(0, "x", rng.normal(1, 0.1, 1000))
        assert large.ci95 < small.ci95

    def test_empty_sample_rejected(self):
        with pytest.raises(ValueError, match="empty"):
            summarize(0, "x", np.array([]))

    def test_as_row(self):
        p = summarize(0.5, "GSS", np.array([0.4, 0.6]))
        x, scheme, mean, std, n = p.as_row()
        assert (x, scheme, n) == (0.5, "GSS", 2)

    def test_summarize_all(self):
        pts = summarize_all(0.3, {"A": np.ones(3), "B": np.zeros(3) + 2})
        assert {p.scheme for p in pts} == {"A", "B"}
        assert all(p.x == 0.3 for p in pts)


class TestPairedRatio:
    def test_ratio(self):
        r = paired_ratio(np.array([1.0, 2.0]), np.array([2.0, 4.0]))
        assert np.allclose(r, 0.5)

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError, match="shape"):
            paired_ratio(np.ones(2), np.ones(3))

    def test_zero_baseline_rejected(self):
        with pytest.raises(ValueError, match="baseline"):
            paired_ratio(np.ones(2), np.array([1.0, 0.0]))
