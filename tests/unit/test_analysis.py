"""Unit tests for the analysis package (verifier, critical path, slack,
bounds)."""

import numpy as np
import pytest

from repro.analysis import (
    all_path_metrics,
    assert_valid_trace,
    continuous_uniform_bound,
    executed_sections,
    graph_metrics,
    lst_headroom,
    npm_energy,
    realized_runtime_slack,
    slack_profile,
    static_bound,
    verify_trace,
)
from repro.graph import Application, validate_graph
from repro.offline import build_plan
from repro.power import transmeta_model
from repro.sim import sample_realization
from repro.sim.trace import trace_one_run
from repro.types import TaskRecord
from repro.workloads import application_with_load, figure3_graph
from tests.conftest import build_fork_graph, build_or_graph


@pytest.fixture(scope="module")
def fig3_app():
    return application_with_load(figure3_graph(), 0.5, 2)


@pytest.fixture(scope="module")
def fig3_traced(fig3_app):
    result = trace_one_run(fig3_app, "GSS", seed=11)
    plan = build_plan(fig3_app, 2)
    return fig3_app, plan, result


class TestVerifier:
    def test_valid_trace_passes(self, fig3_traced):
        app, plan, result = fig3_traced
        assert verify_trace(app, plan.structure, result,
                            transmeta_model()) == []
        assert_valid_trace(app, plan.structure, result)

    def test_empty_trace_flagged(self, fig3_traced):
        app, plan, result = fig3_traced
        import dataclasses
        bare = dataclasses.replace(result, trace=[])
        problems = verify_trace(app, plan.structure, bare)
        assert any("empty" in p for p in problems)

    def test_tampered_overlap_detected(self, fig3_traced):
        app, plan, result = fig3_traced
        import dataclasses
        recs = list(result.trace)
        # force two records onto processor 0 with overlapping windows
        recs[0] = dataclasses.replace(recs[0], processor=0, start=0.0,
                                      finish=10.0)
        recs[1] = dataclasses.replace(
            recs[1], processor=0, start=5.0, finish=12.0,
            speed=recs[1].speed,
            actual_cycles=7.0 * recs[1].speed)
        bad = dataclasses.replace(result, trace=recs)
        problems = verify_trace(app, plan.structure, bad)
        assert any("overlap" in p for p in problems)

    def test_tampered_wcet_detected(self, fig3_traced):
        app, plan, result = fig3_traced
        import dataclasses
        recs = list(result.trace)
        recs[0] = dataclasses.replace(recs[0], actual_cycles=1e9)
        bad = dataclasses.replace(result, trace=recs)
        problems = verify_trace(app, plan.structure, bad)
        assert any("WCET" in p for p in problems)

    def test_illegal_speed_detected(self, fig3_traced):
        app, plan, result = fig3_traced
        import dataclasses
        recs = list(result.trace)
        recs[0] = dataclasses.replace(
            recs[0], speed=0.33333,
            actual_cycles=recs[0].duration * 0.33333)
        bad = dataclasses.replace(result, trace=recs)
        problems = verify_trace(app, plan.structure, bad,
                                transmeta_model())
        assert any("not a level" in p for p in problems)

    def test_missed_deadline_detected(self, fig3_traced):
        app, plan, result = fig3_traced
        import dataclasses
        bad = dataclasses.replace(result,
                                  finish_time=app.deadline * 2)
        problems = verify_trace(app, plan.structure, bad)
        assert any("past deadline" in p for p in problems)

    def test_executed_sections_follows_choices(self, fig3_traced):
        app, plan, result = fig3_traced
        sections = executed_sections(plan.structure, result)
        assert sections[0] == plan.structure.root_id
        # every choice recorded in the result is honoured
        for or_name, sid in result.path_choices.items():
            assert int(sid) in sections


class TestCriticalPath:
    def test_fork_graph_metrics(self):
        st = validate_graph(build_fork_graph())
        m = graph_metrics(st)
        # work: 8+5+4+5 = 22; span: 8 + max(5,4) + 5 = 18
        assert m.max_work == 22
        assert m.max_span == 18
        assert m.expected_parallelism == pytest.approx(22 / 18)

    def test_or_graph_expected_values(self):
        st = validate_graph(build_or_graph())
        metrics = all_path_metrics(st)
        by_prob = {round(p.probability, 1): p for p in metrics}
        assert by_prob[0.3].work == 21 and by_prob[0.3].span == 21
        assert by_prob[0.7].work == 18
        m = graph_metrics(st)
        assert m.expected_work == pytest.approx(0.3 * 21 + 0.7 * 18)

    def test_chain_parallelism_is_one(self):
        from tests.conftest import build_chain_graph
        m = graph_metrics(validate_graph(build_chain_graph(4)))
        assert m.expected_parallelism == pytest.approx(1.0)

    def test_effective_processors(self):
        st = validate_graph(build_fork_graph())
        m = graph_metrics(st)
        assert m.effective_processors(1) == 1.0
        assert m.effective_processors(8) == pytest.approx(22 / 18)

    def test_acet_variant(self):
        st = validate_graph(build_fork_graph())
        m_wc = graph_metrics(st, use_acet=False)
        m_ac = graph_metrics(st, use_acet=True)
        assert m_ac.expected_work < m_wc.expected_work


class TestSlack:
    def test_slack_profile(self, fig3_app):
        plan = build_plan(fig3_app, 2)
        prof = slack_profile(plan)
        assert prof.static_slack == pytest.approx(plan.static_slack)
        assert prof.static_fraction == pytest.approx(0.5, abs=0.01)
        assert prof.expected_runtime_slack > 0
        assert prof.expected_path_slack >= 0
        assert prof.total_expected > prof.static_slack

    def test_realized_runtime_slack_positive(self, fig3_app, rng):
        plan = build_plan(fig3_app, 2)
        rls = [sample_realization(plan.structure, rng)
               for _ in range(20)]
        slack = realized_runtime_slack(plan, rls)
        assert slack.shape == (20,)
        assert np.all(slack >= 0)

    def test_lst_headroom_scaling(self, fig3_app):
        tight = build_plan(fig3_app.with_deadline(
            build_plan(fig3_app, 2).t_worst), 2)
        loose = build_plan(fig3_app, 2)
        assert lst_headroom(loose).min() > lst_headroom(tight).min() - 1e9
        # root section headroom equals static slack in a taut chain
        assert lst_headroom(tight).min() == pytest.approx(0.0, abs=1e-9)


class TestBounds:
    def test_bounds_order(self, fig3_app, rng):
        plan = build_plan(fig3_app, 2)
        power = transmeta_model()
        rl = sample_realization(plan.structure, rng)
        lower = continuous_uniform_bound(plan, power, rl)
        npm = npm_energy(plan, power, rl)
        assert lower < npm

    def test_all_schemes_above_continuous_bound(self, fig3_app):
        from repro.core import get_policy
        from repro.power import NO_OVERHEAD
        from repro.sim import simulate
        power = transmeta_model()
        plan = build_plan(fig3_app, 2)
        rng = np.random.default_rng(5)
        for _ in range(10):
            rl = sample_realization(plan.structure, rng)
            bound = continuous_uniform_bound(plan, power, rl)
            for scheme in ("SPM", "GSS", "SS1"):
                run = get_policy(scheme).start_run(plan, power,
                                                   NO_OVERHEAD,
                                                   realization=rl)
                res = simulate(plan, run, power, NO_OVERHEAD, rl)
                assert res.total_energy >= bound * (1 - 1e-9), scheme

    def test_static_bound_without_realization(self, fig3_app):
        plan = build_plan(fig3_app, 2)
        power = transmeta_model()
        e = static_bound(plan, power)
        assert e > 0
