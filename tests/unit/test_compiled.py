"""Unit tests for the compiled section program (structure and errors).

The heavy correctness guarantees live in
``tests/property/test_compiled_equivalence.py``; these tests pin the
compiler's structural invariants, its caching, its error paths and the
dynamic-batch eligibility protocol.
"""

import numpy as np
import pytest

from repro.core import get_policy
from repro.errors import SimulationError
from repro.offline import build_plan
from repro.power import PAPER_OVERHEAD, ContinuousPowerModel, transmeta_model
from repro.sim import (
    Realization,
    compile_plan,
    sample_realization_batch,
    simulate_compiled,
    supports_dynamic_batch,
)
from repro.workloads import application_with_load
from tests.conftest import build_chain_graph, build_or_graph


@pytest.fixture
def or_plan():
    app = application_with_load(build_or_graph(), 0.7, 2)
    return build_plan(app, 2)


class TestCompiledPlan:
    def test_cached_on_plan(self, or_plan):
        prog = compile_plan(or_plan)
        assert compile_plan(or_plan) is prog
        assert or_plan.compiled is prog

    def test_slots_cover_every_node(self, or_plan):
        prog = compile_plan(or_plan)
        total = sum(len(sec.entries) for sec in prog.sections.values())
        assert total == prog.n_slots
        gids = [e[1] for sec in prog.sections.values()
                for e in sec.entries]
        assert sorted(gids) == list(range(prog.n_slots))

    def test_columns_match_computation_nodes(self, or_plan):
        prog = compile_plan(or_plan)
        graph = or_plan.app.graph
        assert prog.comp_names == [n.name
                                   for n in graph.computation_nodes()]
        for sec in prog.sections.values():
            for is_and, _gid, col, *_rest in sec.entries:
                assert (col == -1) == is_and

    def test_branch_stats_compiled_in(self, or_plan):
        prog = compile_plan(or_plan)
        for sec in prog.sections.values():
            if sec.exit_or is not None and sec.branch_ids:
                for tid in sec.branch_ids:
                    worst, average = sec.branch_stats[tid]
                    stats = or_plan.branch_stats[sec.exit_or][tid]
                    assert (worst, average) == (stats.worst,
                                                stats.average)

    def test_missing_actual_fails_at_bind(self, or_plan):
        prog = compile_plan(or_plan)
        rl = Realization(actuals={"A": 1.0}, choices={})
        with pytest.raises(SimulationError, match="no actual time"):
            prog.actuals_row(rl)

    def test_missing_choice_fails(self, or_plan):
        prog = compile_plan(or_plan)
        with pytest.raises(SimulationError, match="no branch choice"):
            prog.executed_paths({}, 1)

    def test_foreign_choice_fails(self, or_plan):
        prog = compile_plan(or_plan)
        bad = {name: np.array([9999])
               for sec in prog.sections.values()
               if sec.exit_or is not None and len(sec.branch_ids) > 1
               for name in [sec.exit_or]}
        with pytest.raises(SimulationError, match="not a successor"):
            prog.executed_paths(bad, 1)

    def test_executed_paths_keys_and_groups(self, or_plan):
        prog = compile_plan(or_plan)
        rng = np.random.default_rng(3)
        batch = sample_realization_batch(or_plan.structure, rng, 50)
        groups, keys = prog.executed_paths(batch.choices, 50)
        assert len(keys) == 50
        covered = np.concatenate([idx for _path, idx in groups])
        assert sorted(covered.tolist()) == list(range(50))
        for path, idx in groups:
            key = ">".join(str(s) for s in path)
            assert all(keys[i] == key for i in idx.tolist())


class TestDynamicBatchEligibility:
    @pytest.mark.parametrize("scheme,expected", [
        ("GSS", True), ("SS1", True), ("SS2", True),
        ("AS", True), ("PS", True),
    ])
    def test_paper_dynamic_schemes_are_eligible(self, or_plan, scheme,
                                                expected):
        power = transmeta_model()
        run = get_policy(scheme).start_run(or_plan, power, PAPER_OVERHEAD)
        assert supports_dynamic_batch(run, power) is expected

    def test_fixed_speed_run_is_not(self, or_plan):
        power = transmeta_model()
        run = get_policy("NPM").start_run(or_plan, power, PAPER_OVERHEAD)
        assert not supports_dynamic_batch(run, power)

    def test_continuous_power_model_is_not(self, or_plan):
        power = ContinuousPowerModel(s_min=0.1)
        run = get_policy("GSS").start_run(or_plan, power, PAPER_OVERHEAD)
        assert not supports_dynamic_batch(run, power)

    def test_undeclared_or_hook_is_not(self, or_plan):
        from repro.core.base import PolicyRun
        power = transmeta_model()

        class Custom(PolicyRun):
            name = "custom"
            fixed_speed = None

            def on_or_fired(self, or_name, target_sid, t):
                pass  # overridden but undeclared: must stay scalar

        assert not supports_dynamic_batch(Custom(), power)


class TestScalarKernel:
    def test_wcet_overrun_rejected(self):
        app = application_with_load(build_chain_graph(2, wcet=10,
                                                      acet=5), 0.5, 2)
        plan = build_plan(app, 2)
        power = transmeta_model()
        rl = Realization(actuals={"T0": 11.0, "T1": 5.0}, choices={})
        run = get_policy("NPM").start_run(plan, power, PAPER_OVERHEAD)
        with pytest.raises(SimulationError, match="exceeds WCET"):
            simulate_compiled(plan, run, power, PAPER_OVERHEAD, rl)

    def test_scratch_reuse_is_invisible(self, or_plan):
        # back-to-back runs on one program must not leak state
        power = transmeta_model()
        rng = np.random.default_rng(8)
        batch = sample_realization_batch(or_plan.structure, rng, 3)
        policy = get_policy("GSS")
        results = []
        for rl in batch:
            run = policy.start_run(or_plan, power, PAPER_OVERHEAD)
            results.append(simulate_compiled(or_plan, run, power,
                                             PAPER_OVERHEAD, rl))
        rerun = []
        for rl in batch:
            run = policy.start_run(or_plan, power, PAPER_OVERHEAD)
            rerun.append(simulate_compiled(or_plan, run, power,
                                           PAPER_OVERHEAD, rl))
        for a, b in zip(results, rerun):
            assert a.total_energy == b.total_energy
            assert a.finish_time == b.finish_time


class TestProgramCache:
    """Cross-instance compiled-program reuse keyed by plan fingerprint."""

    def _fresh_plan(self):
        app = application_with_load(build_or_graph(), 0.7, 2)
        return build_plan(app, 2)

    def test_distinct_instances_share_program(self):
        from repro.sim.compiled import (clear_program_cache,
                                        program_cache_stats)
        clear_program_cache()
        a, b = self._fresh_plan(), self._fresh_plan()
        assert a is not b
        prog = compile_plan(a)
        assert compile_plan(b) is prog  # same fingerprint, same program
        stats = program_cache_stats()
        assert stats["hits"] >= 1
        assert stats["size"] == 1

    def test_different_fingerprint_recompiles(self):
        from repro.sim.compiled import (clear_program_cache,
                                        program_cache_stats)
        clear_program_cache()
        first = compile_plan(self._fresh_plan())
        app = application_with_load(build_or_graph(), 0.5, 2)
        other = compile_plan(build_plan(app, 2))  # different deadline
        assert other is not first
        assert program_cache_stats()["size"] == 2

    def test_clear_forgets_programs(self):
        from repro.sim.compiled import (clear_program_cache,
                                        program_cache_stats)
        clear_program_cache()
        first = compile_plan(self._fresh_plan())
        clear_program_cache()
        assert program_cache_stats() == {"hits": 0, "misses": 0,
                                         "size": 0}
        assert compile_plan(self._fresh_plan()) is not first
