"""Unit tests for whole-graph validation and DOT export."""

import pytest

from repro.errors import ValidationError
from repro.graph import (
    AndOrGraph,
    Application,
    GraphBuilder,
    to_dot,
    validate_application,
    validate_graph,
)
from tests.conftest import build_or_graph


class TestValidation:
    def test_valid_graph_returns_structure(self):
        st = validate_graph(build_or_graph())
        assert len(st.sections) == 4

    def test_empty_graph_rejected(self):
        with pytest.raises(ValidationError, match="empty"):
            validate_graph(AndOrGraph("empty"))

    def test_graph_without_computation_rejected(self):
        g = AndOrGraph("sync-only")
        g.add_and("A1")
        g.add_and("A2")
        g.add_edge("A1", "A2")
        with pytest.raises(ValidationError, match="no computation"):
            validate_graph(g)

    def test_isolated_and_node_rejected(self):
        g = AndOrGraph("iso")
        g.add_computation("A", 1, 1)
        g.add_and("X")
        with pytest.raises(ValidationError, match="isolated"):
            validate_graph(g)

    def test_cycle_rejected(self):
        g = AndOrGraph("cyc")
        g.add_computation("A", 1, 1)
        g.add_computation("B", 1, 1)
        g.add_edge("A", "B")
        g.add_edge("B", "A")
        with pytest.raises(ValidationError, match="cycle"):
            validate_graph(g)

    def test_validate_application(self):
        app = Application(build_or_graph(), deadline=50)
        st = validate_application(app)
        assert st.graph is app.graph


class TestDotExport:
    def test_shapes_by_kind(self):
        text = to_dot(build_or_graph())
        assert "shape=circle" in text          # computation
        assert "shape=doublecircle" in text    # OR
        b = GraphBuilder("with-and")
        b.task("A", 1, 1)
        b.and_node("X", after=["A"])
        b.task("B", 1, 1, after=["X"])
        assert "shape=diamond" in to_dot(b.graph)

    def test_probability_labels(self):
        text = to_dot(build_or_graph())
        assert '"O1" -> "B" [label="30%"]' in text
        assert '"O1" -> "C" [label="70%"]' in text

    def test_wcet_acet_labels(self):
        text = to_dot(build_or_graph())
        assert "A\\n8/5" in text

    def test_all_edges_present(self):
        g = build_or_graph()
        text = to_dot(g)
        for u, v in g.edges():
            assert f'"{u}" -> "{v}"' in text

    def test_valid_dot_syntax_shape(self):
        text = to_dot(build_or_graph(), rankdir="LR")
        assert text.startswith("digraph")
        assert text.rstrip().endswith("}")
        assert "rankdir=LR" in text
