"""Unit tests for the ATR and Figure 3 workloads and load scaling."""

import pytest

from repro.errors import ConfigError
from repro.graph import (
    enumerate_paths,
    total_probability,
    validate_graph,
)
from repro.workloads import (
    AtrConfig,
    application_with_load,
    atr_graph,
    average_case_length,
    figure1a_graph,
    figure1b_graph,
    figure3_graph,
    worst_case_length,
)


class TestAtrGraph:
    def test_valid_structure(self):
        st = validate_graph(atr_graph())
        assert total_probability(st) == pytest.approx(1.0)

    def test_one_path_per_roi_count(self):
        cfg = AtrConfig()
        st = validate_graph(atr_graph(cfg))
        paths = enumerate_paths(st)
        assert len(paths) == cfg.max_rois + 1

    def test_path_probabilities_match_roi_distribution(self):
        cfg = AtrConfig()
        st = validate_graph(atr_graph(cfg))
        probs = sorted(p.probability for p in enumerate_paths(st))
        assert probs == sorted(cfg.roi_probs)

    def test_alpha_sets_acet(self):
        g = atr_graph(AtrConfig(alpha=0.6))
        for node in g.computation_nodes():
            assert node.acet == pytest.approx(0.6 * node.wcet)

    def test_roi_tasks_are_parallel(self):
        g = atr_graph(AtrConfig())
        # the k=3 branch has 3 ROI tasks all fed by the same AND fork
        assert set(g.successors("k3_fork")) == {
            "k3_roi0", "k3_roi1", "k3_roi2"}

    def test_roi_task_wcet_scales_with_templates(self):
        cfg = AtrConfig(n_templates=5, match_wcet=2.0)
        assert cfg.roi_task_wcet == 10.0
        g = atr_graph(cfg)
        assert g.node("k1_roi0").wcet == 10.0

    @pytest.mark.parametrize("kwargs", [
        {"max_rois": 0},
        {"roi_probs": (0.5, 0.5)},                       # wrong length
        {"roi_probs": (0.5, 0.2, 0.2, 0.2, 0.1)},        # sums to 1.2
        {"roi_probs": (0.5, 0.3, 0.2, -0.1, 0.1)},       # negative
        {"alpha": 0.0},
        {"detect_wcet": -1.0},
    ])
    def test_invalid_config_rejected(self, kwargs):
        with pytest.raises(ConfigError):
            AtrConfig(**kwargs)


class TestFigure3:
    def test_valid_structure(self):
        st = validate_graph(figure3_graph())
        assert total_probability(st) == pytest.approx(1.0)

    def test_contains_paper_nodes(self):
        g = figure3_graph()
        for name in ("A", "B", "F", "G", "H", "I", "J", "K", "L",
                     "O1", "O2", "O3", "O4", "A1", "A2"):
            assert name in g, name

    def test_loop_expanded(self):
        g = figure3_graph()
        assert "LF#i1" in g and "LF#i4" in g    # probabilistic loop
        assert "LT#i3" in g                      # deterministic 3x loop
        assert "LT#or1" not in g.node_names      # no OR in the fixed loop

    def test_branch_probabilities(self):
        g = figure3_graph()
        assert g.branch_probabilities("O1") == {"F": 0.35, "G": 0.65}
        assert g.branch_probabilities("O3") == {"I": 0.30, "J": 0.70}

    def test_alpha_override(self):
        g = figure3_graph(alpha=0.5)
        for node in g.computation_nodes():
            assert node.acet == pytest.approx(0.5 * node.wcet)

    def test_native_acets_kept_without_alpha(self):
        g = figure3_graph()
        assert g.node("A").acet == 5

    def test_invalid_alpha(self):
        with pytest.raises(ConfigError):
            figure3_graph(alpha=1.5)

    def test_path_count(self):
        st = validate_graph(figure3_graph())
        # O1 (2 ways; F way multiplies by 4 loop exits) * O3 (2 ways)
        assert len(enumerate_paths(st)) == (4 + 1) * 2


class TestFigure1:
    def test_figure1a_is_single_section(self):
        st = validate_graph(figure1a_graph())
        assert len(st.sections) == 1

    def test_figure1b_has_two_paths(self):
        st = validate_graph(figure1b_graph())
        assert len(enumerate_paths(st)) == 2


class TestLoadScaling:
    def test_deadline_from_load(self):
        g = figure3_graph()
        t_worst = worst_case_length(g, 2)
        app = application_with_load(g, 0.5, 2)
        assert app.deadline == pytest.approx(t_worst / 0.5)
        assert app.meta["load"] == 0.5

    def test_load_one_zero_slack(self):
        g = figure3_graph()
        app = application_with_load(g, 1.0, 2)
        assert app.deadline == pytest.approx(worst_case_length(g, 2))

    def test_more_processors_shorten_t_worst(self):
        g = atr_graph()
        assert worst_case_length(g, 4) <= worst_case_length(g, 1)

    def test_average_below_worst(self):
        g = figure3_graph()
        assert average_case_length(g, 2) < worst_case_length(g, 2)

    @pytest.mark.parametrize("load", [0.0, -0.5, 1.5])
    def test_invalid_load_rejected(self, load):
        with pytest.raises(ConfigError):
            application_with_load(figure3_graph(), load, 2)
