"""The offline canonical-stage cache: correctness before speed.

The cache memoizes only the deadline-independent round-1 output, so a
hit must reproduce exactly the plan a cold build produces — including
for a *different* deadline on the same graph — and plans built from
the same cached stage must not share mutable state.
"""

import pytest

from repro.graph import Application
from repro.offline import (
    build_plan,
    clear_plan_cache,
    graph_fingerprint,
    plan_cache_stats,
)
from repro.offline.plan import _PLAN_CACHE, _PLAN_CACHE_MAX
from repro.workloads import application_with_load, atr_graph, figure3_graph


@pytest.fixture(autouse=True)
def fresh_cache():
    clear_plan_cache()
    yield
    clear_plan_cache()


def _plans_equal(a, b):
    assert a.t_worst == b.t_worst
    assert a.t_avg == b.t_avg
    assert set(a.sections) == set(b.sections)
    for sid in a.sections:
        sa, sb = a.sections[sid], b.sections[sid]
        assert sa.lst == sb.lst
        assert sa.finish_bound == sb.finish_bound
        assert sa.shift == sb.shift
        assert sa.dispatch_order == sb.dispatch_order
    for or_name in a.branch_stats:
        assert a.branch_stats[or_name] == b.branch_stats[or_name]


class TestFingerprint:
    def test_stable_across_calls(self):
        g = figure3_graph()
        assert graph_fingerprint(g) == graph_fingerprint(g)

    def test_identical_construction_matches(self):
        assert graph_fingerprint(figure3_graph()) == \
            graph_fingerprint(figure3_graph())

    def test_timing_change_changes_digest(self):
        assert graph_fingerprint(figure3_graph(alpha=0.5)) != \
            graph_fingerprint(figure3_graph(alpha=0.9))


class TestCacheCorrectness:
    def test_hit_reproduces_cold_build(self):
        app = application_with_load(atr_graph(), 0.5, 2)
        cold = build_plan(app, 2, use_cache=False)
        warm_miss = build_plan(app, 2)   # populates
        warm_hit = build_plan(app, 2)    # serves from cache
        assert plan_cache_stats()["hits"] >= 1
        _plans_equal(cold, warm_miss)
        _plans_equal(cold, warm_hit)

    def test_different_deadline_reuses_stage(self):
        g = atr_graph()
        app_a = application_with_load(g, 0.4, 2)
        app_b = application_with_load(g, 0.8, 2)
        plan_a = build_plan(app_a, 2)
        misses_before = plan_cache_stats()["misses"]
        plan_b = build_plan(app_b, 2)
        # same graph/m/reserve/heuristic: round 1 came from the cache
        assert plan_cache_stats()["misses"] == misses_before
        # but round 2 (shifting) sees each deadline
        assert plan_a.t_worst == plan_b.t_worst
        root = plan_a.structure.root_id
        assert plan_a.sections[root].shift != plan_b.sections[root].shift
        cold_b = build_plan(app_b, 2, use_cache=False)
        _plans_equal(plan_b, cold_b)

    def test_plans_do_not_share_mutable_state(self):
        app = application_with_load(atr_graph(), 0.5, 2)
        first = build_plan(app, 2)
        root = first.structure.root_id
        first.sections[root].shift = -123.0
        first.sections[root].lst.clear()
        first.sections[root].dispatch_order.append("intruder")
        second = build_plan(app, 2)
        assert second.sections[root].shift != -123.0
        assert second.sections[root].lst
        assert "intruder" not in second.sections[root].dispatch_order

    def test_key_dimensions_miss(self):
        app = application_with_load(atr_graph(), 0.5, 4)
        build_plan(app, 4)
        base = plan_cache_stats()["misses"]
        build_plan(app, 2, require_feasible=False)       # different m
        build_plan(app, 4, reserve=0.01)                 # different reserve
        build_plan(app, 4, heuristic="stf")              # different heuristic
        assert plan_cache_stats()["misses"] == base + 3

    def test_use_cache_false_does_not_populate(self):
        app = application_with_load(figure3_graph(), 0.6, 2,)
        clear_plan_cache()
        build_plan(app, 2, use_cache=False)
        assert plan_cache_stats() == {"hits": 0, "misses": 0, "size": 0}

    def test_eviction_bound(self):
        g = figure3_graph()
        app = application_with_load(g, 0.6, 2)
        for i in range(_PLAN_CACHE_MAX + 5):
            build_plan(app, 2, reserve=1e-6 * i, require_feasible=False)
        assert len(_PLAN_CACHE) <= _PLAN_CACHE_MAX

    def test_infeasible_still_raised_on_hit(self):
        from repro.errors import InfeasibleError
        g = atr_graph()
        app = application_with_load(g, 0.5, 2)
        build_plan(app, 2)  # populate stage for (g, 2, 0.0, ltf)
        tight = Application(graph=g, deadline=app.deadline / 100.0,
                            name="tight")
        with pytest.raises(InfeasibleError):
            build_plan(tight, 2)
