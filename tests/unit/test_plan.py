"""Unit tests for the offline plan (profile, shifting, LSTs)."""

import pytest

from repro.errors import InfeasibleError
from repro.graph import Application
from repro.offline import build_plan
from tests.conftest import (
    build_chain_graph,
    build_fork_graph,
    build_nested_or_graph,
    build_or_graph,
)


class TestWorstAndAverage:
    def test_chain_t_worst(self):
        app = Application(build_chain_graph(3, wcet=10, acet=4), deadline=100)
        plan = build_plan(app, 2)
        assert plan.t_worst == 30
        assert plan.t_avg == 12

    def test_or_graph_takes_longest_branch(self):
        app = Application(build_or_graph(), deadline=100)
        plan = build_plan(app, 2)
        # worst path: A(8) + B(8) + D(5) = 21
        assert plan.t_worst == 21
        # avg: 5 + (0.3*6 + 0.7*3) + 3
        assert plan.t_avg == pytest.approx(5 + 0.3 * 6 + 0.7 * 3 + 3)

    def test_nested_or(self):
        app = Application(build_nested_or_graph(), deadline=100)
        plan = build_plan(app, 2)
        # worst: A(6) + B(10) + D(5) + E(8) + G(3) = 32
        assert plan.t_worst == 32
        expected_avg = 3 + (0.4 * 5 + 0.6 * 2) + 2 + \
            (0.5 * 4 + 0.5 * 1) + 1.5
        assert plan.t_avg == pytest.approx(expected_avg)

    def test_static_slack(self):
        app = Application(build_chain_graph(2, wcet=10, acet=5), deadline=50)
        plan = build_plan(app, 1)
        assert plan.static_slack == 30


class TestFeasibility:
    def test_infeasible_raises(self):
        app = Application(build_chain_graph(3, wcet=10, acet=5), deadline=29)
        with pytest.raises(InfeasibleError) as exc:
            build_plan(app, 2)
        assert exc.value.worst_case == 30
        assert exc.value.deadline == 29

    def test_exact_deadline_feasible(self):
        app = Application(build_chain_graph(3, wcet=10, acet=5), deadline=30)
        plan = build_plan(app, 2)
        assert plan.static_slack == 0

    def test_require_feasible_false(self):
        app = Application(build_chain_graph(3, wcet=10, acet=5), deadline=5)
        plan = build_plan(app, 2, require_feasible=False)
        assert plan.t_worst == 30


class TestShiftingAndLSTs:
    def test_chain_lsts(self):
        app = Application(build_chain_graph(3, wcet=10, acet=5), deadline=50)
        plan = build_plan(app, 1)
        sp = plan.sections[plan.structure.root_id]
        # shifted to end exactly at 50: starts at 20, 30, 40
        assert sp.shift == 20
        assert sp.lst["T0"] == 20
        assert sp.lst["T1"] == 30
        assert sp.lst["T2"] == 40
        assert sp.finish_bound["T2"] == 50

    def test_or_sections_shift_by_remaining_work(self):
        app = Application(build_or_graph(), deadline=100)
        plan = build_plan(app, 2)
        st = plan.structure
        b_sid = st.section_of_node("B").id
        c_sid = st.section_of_node("C").id
        d_sid = st.section_of_node("D").id
        # D must start by 95 (5 left); B by 100-8-5=87; C by 100-5-5=90
        assert plan.sections[d_sid].lst["D"] == pytest.approx(95)
        assert plan.sections[b_sid].lst["B"] == pytest.approx(87)
        assert plan.sections[c_sid].lst["C"] == pytest.approx(90)
        # root: worst remaining after A is 8+5, so A starts by 100-21=79
        root = plan.sections[st.root_id]
        assert root.lst["A"] == pytest.approx(79)

    def test_lst_plus_wcet_is_finish_bound(self):
        app = Application(build_fork_graph(), deadline=40)
        plan = build_plan(app, 2)
        sp = plan.sections[plan.structure.root_id]
        for name, lst in sp.lst.items():
            wcet = app.graph.node(name).wcet
            assert sp.finish_bound[name] == pytest.approx(lst + wcet)

    def test_reserve_shifts_lsts_earlier(self):
        app = Application(build_chain_graph(3, wcet=10, acet=5), deadline=50)
        plain = build_plan(app, 1, reserve=0.0)
        inflated = build_plan(app, 1, reserve=1.0)
        r = plan_root = plain.structure.root_id
        assert inflated.sections[r].lst["T0"] < plain.sections[r].lst["T0"]
        assert inflated.t_worst == pytest.approx(plain.t_worst + 3)


class TestBranchStats:
    def test_remaining_stats_per_path(self):
        app = Application(build_or_graph(), deadline=100)
        plan = build_plan(app, 2)
        st = plan.structure
        b_sid = st.section_of_node("B").id
        c_sid = st.section_of_node("C").id
        stats_b = plan.remaining_stats("O1", b_sid)
        stats_c = plan.remaining_stats("O1", c_sid)
        assert stats_b.worst == pytest.approx(8 + 5)
        assert stats_c.worst == pytest.approx(5 + 5)
        assert stats_b.average == pytest.approx(6 + 3)
        assert stats_c.average == pytest.approx(3 + 3)

    def test_nested_stats_weighted(self):
        app = Application(build_nested_or_graph(), deadline=100)
        plan = build_plan(app, 2)
        st = plan.structure
        b_sid = st.section_of_node("B").id
        stats_b = plan.remaining_stats("O1", b_sid)
        # after choosing B: B + D + max(E, F) + G worst
        assert stats_b.worst == pytest.approx(10 + 5 + 8 + 3)
        # average: B.a + D.a + (0.5*E.a + 0.5*F.a) + G.a
        assert stats_b.average == pytest.approx(5 + 2 + 2.5 + 1.5)

    def test_shared_merge_computed_once(self):
        app = Application(build_or_graph(), deadline=100)
        plan = build_plan(app, 2)
        d_sid = plan.structure.section_of_node("D").id
        stats = plan.remaining_stats("O2", d_sid)
        assert stats.worst == pytest.approx(5)
        assert stats.average == pytest.approx(3)
