"""Unit tests for power-over-time profiles."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.power import transmeta_model, xscale_model
from repro.sim import compare_profiles, power_profile, render_profile
from repro.sim.trace import trace_one_run
from repro.workloads import application_with_load, figure3_graph


@pytest.fixture(scope="module")
def traced_app():
    app = application_with_load(figure3_graph(), 0.5, 2)
    return app, trace_one_run(app, "GSS", seed=3)


class TestPowerProfile:
    def test_integral_matches_engine_energy(self, traced_app):
        app, res = traced_app
        prof = power_profile(res, transmeta_model(), 2, n_samples=4000,
                             horizon=app.deadline)
        expected = res.energy.busy + res.energy.idle
        assert prof.energy() == pytest.approx(expected, rel=0.01)

    def test_floor_is_idle_power(self, traced_app):
        app, res = traced_app
        power = transmeta_model()
        prof = power_profile(res, power, 2, horizon=app.deadline)
        assert prof.power.min() >= 2 * power.idle_power - 1e-12
        # after the app finishes, power is exactly the idle floor
        assert prof.power[-1] == pytest.approx(2 * power.idle_power)

    def test_peak_bounded_by_m_times_max(self, traced_app):
        app, res = traced_app
        power = transmeta_model()
        prof = power_profile(res, power, 2, horizon=app.deadline)
        assert prof.peak <= 2 * power.power(1.0) + 1e-12

    def test_npm_profile_has_higher_peak(self, traced_app):
        app, gss = traced_app
        npm = trace_one_run(app, "NPM", seed=3)
        power = transmeta_model()
        p_gss = power_profile(gss, power, 2, horizon=app.deadline)
        p_npm = power_profile(npm, power, 2, horizon=app.deadline)
        assert p_npm.peak > p_gss.peak

    def test_requires_trace(self, traced_app):
        import dataclasses
        app, res = traced_app
        bare = dataclasses.replace(res, trace=[])
        with pytest.raises(ConfigError, match="no trace"):
            power_profile(bare, transmeta_model(), 2)

    def test_invalid_sampling(self, traced_app):
        app, res = traced_app
        with pytest.raises(ConfigError):
            power_profile(res, transmeta_model(), 2, n_samples=1)
        with pytest.raises(ConfigError):
            power_profile(res, transmeta_model(), 2, horizon=-1.0)


class TestRendering:
    def test_render_profile(self, traced_app):
        app, res = traced_app
        prof = power_profile(res, xscale_model(), 2,
                             horizon=app.deadline)
        text = render_profile(prof)
        assert "power profile: GSS" in text
        assert "#" in text

    def test_render_size_limits(self, traced_app):
        app, res = traced_app
        prof = power_profile(res, xscale_model(), 2)
        with pytest.raises(ConfigError):
            render_profile(prof, width=4)

    def test_compare_profiles(self, traced_app):
        app, res = traced_app
        power = transmeta_model()
        npm = trace_one_run(app, "NPM", seed=3)
        text = compare_profiles([
            power_profile(res, power, 2, horizon=app.deadline),
            power_profile(npm, power, 2, horizon=app.deadline),
        ])
        assert "GSS" in text and "NPM" in text
