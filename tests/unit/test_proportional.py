"""Unit tests for the PS (proportional worst-case speculation) extension."""

import numpy as np
import pytest

from repro.core import get_policy
from repro.graph import Application
from repro.offline import build_plan
from repro.power import NO_OVERHEAD, PAPER_OVERHEAD
from repro.sim import sample_realization, simulate
from tests.conftest import build_chain_graph, build_or_graph


@pytest.fixture
def or_plan(xscale):
    app = Application(build_or_graph(), deadline=60)
    return build_plan(app, 2)


class TestProportionalFloor:
    def test_initial_floor_from_worst_case(self, xscale):
        app = Application(build_chain_graph(2, wcet=10, acet=5),
                          deadline=50)
        plan = build_plan(app, 1)
        run = get_policy("PS").start_run(plan, xscale, PAPER_OVERHEAD)
        # t_worst=20, D=50 -> 0.4 exactly (a level)
        assert run.floor(0.0) == 0.4

    def test_floor_refreshes_at_or(self, xscale, or_plan):
        run = get_policy("PS").start_run(or_plan, xscale, PAPER_OVERHEAD)
        st = or_plan.structure
        c_sid = st.section_of_node("C").id
        # choosing the short branch early: little work, long horizon
        run.on_or_fired("O1", c_sid, t=10.0)
        # 10 worst-case units left over 50 -> 0.2 -> snap to 0.4
        assert run.floor(10.0) == 0.4

    def test_ps_floor_at_least_as_high_as_as(self, xscale, or_plan):
        """Worst-case speculation is never below average-case."""
        ps = get_policy("PS").start_run(or_plan, xscale, PAPER_OVERHEAD)
        as_ = get_policy("AS").start_run(or_plan, xscale, PAPER_OVERHEAD)
        assert ps.floor(0.0) >= as_.floor(0.0)
        st = or_plan.structure
        for branch in ("B", "C"):
            sid = st.section_of_node(branch).id
            ps.on_or_fired("O1", sid, t=8.0)
            as_.on_or_fired("O1", sid, t=8.0)
            assert ps.floor(8.0) >= as_.floor(8.0)

    def test_registry_exposure(self):
        assert get_policy("ps").name == "PS"
        assert get_policy("proportional").name == "PS"
        from repro.core import ALL_SCHEMES
        assert "PS" in ALL_SCHEMES


class TestProportionalBehaviour:
    def test_meets_deadlines(self, xscale, or_plan, rng):
        policy = get_policy("PS")
        for _ in range(30):
            rl = sample_realization(or_plan.structure, rng)
            run = policy.start_run(or_plan, xscale, NO_OVERHEAD,
                                   realization=rl)
            res = simulate(or_plan, run, xscale, NO_OVERHEAD, rl)
            assert res.met_deadline

    def test_bracket_between_gss_and_spm(self, xscale):
        """PS saves less than GSS but more than (or equal to) SPM.

        GSS additionally reclaims dynamic slack; SPM sees only static
        slack at one fixed level.  PS sits between them on average.
        """
        from tests.conftest import build_nested_or_graph
        app = Application(build_nested_or_graph(), deadline=80)
        plan = build_plan(app, 2)
        rng = np.random.default_rng(0)
        totals = {"GSS": 0.0, "PS": 0.0, "SPM": 0.0}
        for _ in range(100):
            rl = sample_realization(plan.structure, rng)
            for name in totals:
                run = get_policy(name).start_run(plan, xscale,
                                                 NO_OVERHEAD,
                                                 realization=rl)
                res = simulate(plan, run, xscale, NO_OVERHEAD, rl)
                totals[name] += res.total_energy
        assert totals["GSS"] <= totals["PS"] * (1 + 0.05)
        assert totals["PS"] <= totals["SPM"] * (1 + 0.05)

    def test_floor_pins_level_on_high_load_chain(self, transmeta, rng):
        """On a taut chain PS's constant floor suppresses the level
        drift GSS exhibits as dynamic slack accrues (the switch-count
        reduction speculation exists for)."""
        app = Application(build_chain_graph(8, wcet=10, acet=3),
                          deadline=100)  # load 0.8 on one processor
        plan = build_plan(app, 1)
        counts = {"GSS": 0, "PS": 0}
        for _ in range(50):
            rl = sample_realization(plan.structure, rng)
            for name in counts:
                run = get_policy(name).start_run(plan, transmeta,
                                                 PAPER_OVERHEAD,
                                                 realization=rl)
                res = simulate(plan, run, transmeta, PAPER_OVERHEAD, rl)
                counts[name] += res.n_speed_changes
        assert counts["PS"] <= counts["GSS"]
