"""Unit tests for the power/speed models."""

import pytest

from repro.errors import PowerModelError
from repro.power import (
    ContinuousPowerModel,
    DiscretePowerModel,
    make_power_model,
    transmeta_model,
    xscale_model,
)


class TestDiscreteModel:
    def test_xscale_levels(self, xscale):
        assert xscale.levels() == (0.15, 0.4, 0.6, 0.8, 1.0)
        assert xscale.s_min == 0.15
        assert xscale.s_max == 1.0
        assert xscale.f_max_mhz == 1000.0

    def test_transmeta_sixteen_levels(self, transmeta):
        assert len(transmeta.levels()) == 16
        assert transmeta.s_min == pytest.approx(200 / 700)

    def test_snap_up_rounds_to_next_level(self, xscale):
        assert xscale.snap_up(0.41) == 0.6
        assert xscale.snap_up(0.4) == 0.4
        assert xscale.snap_up(0.05) == 0.15  # below s_min clamps up
        assert xscale.snap_up(0.99) == 1.0
        assert xscale.snap_up(1.0) == 1.0

    def test_bracket(self, xscale):
        assert xscale.bracket(0.5) == (0.4, 0.6)
        assert xscale.bracket(0.6) == (0.4, 0.6)
        assert xscale.bracket(0.05) == (0.15, 0.15)

    def test_power_is_v_squared_f(self, xscale):
        # at 600 MHz / 1.3 V: (1.3/1.8)^2 * 0.6
        assert xscale.power(0.6) == pytest.approx((1.3 / 1.8) ** 2 * 0.6)
        assert xscale.power(1.0) == pytest.approx(1.0)

    def test_power_nonlinear_vs_cubic(self, xscale):
        # the real table saves less than the idealized cubic model at
        # low speed (voltage does not fall proportionally)
        assert xscale.power(0.4) > 0.4 ** 3

    def test_task_energy_quadratic_effect(self, xscale):
        # energy of the same work shrinks when run slower
        e_fast = xscale.task_energy(1.0, work_at_max=10)
        e_slow = xscale.task_energy(0.6, work_at_max=10)
        assert e_slow < e_fast

    def test_idle_energy_five_percent(self, xscale):
        assert xscale.idle_power == pytest.approx(0.05)
        assert xscale.idle_energy(100) == pytest.approx(5.0)

    def test_level_index_rejects_non_level(self, xscale):
        with pytest.raises(PowerModelError, match="not an available level"):
            xscale.level_index(0.5)

    def test_cycles_to_time(self, xscale):
        # 300 cycles at 1000 MHz = 0.3 us
        assert xscale.cycles_to_time(300, 1.0) == pytest.approx(0.3)
        assert xscale.cycles_to_time(300, 0.15) == pytest.approx(2.0)

    def test_invalid_tables_rejected(self):
        with pytest.raises(PowerModelError, match="at least two"):
            DiscretePowerModel([(100, 1.0)])
        with pytest.raises(PowerModelError, match="duplicate"):
            DiscretePowerModel([(100, 1.0), (100, 1.2)])
        with pytest.raises(PowerModelError, match="positive"):
            DiscretePowerModel([(100, 1.0), (-5, 0.8)])
        with pytest.raises(PowerModelError, match="non-decreasing"):
            DiscretePowerModel([(100, 1.2), (200, 1.0)])

    def test_negative_energy_inputs_rejected(self, xscale):
        with pytest.raises(PowerModelError):
            xscale.busy_energy(1.0, -1.0)
        with pytest.raises(PowerModelError):
            xscale.task_energy(0.0, 1.0)
        with pytest.raises(PowerModelError):
            xscale.idle_energy(-1.0)


class TestContinuousModel:
    def test_power_cubic(self, continuous):
        assert continuous.power(1.0) == pytest.approx(1.0)
        assert continuous.power(0.5) == pytest.approx(0.125)

    def test_energy_quadratic(self, continuous):
        # halving the speed quarters the energy of fixed work
        assert continuous.task_energy(0.5, 10) == pytest.approx(
            0.25 * continuous.task_energy(1.0, 10))

    def test_snap_respects_s_min(self):
        m = ContinuousPowerModel(s_min=0.3)
        assert m.snap_up(0.1) == 0.3
        assert m.snap_up(0.7) == 0.7
        assert m.snap_up(2.0) == 1.0

    def test_levels_empty(self, continuous):
        assert continuous.levels() == ()
        lo, hi = continuous.bracket(0.42)
        assert lo == hi == pytest.approx(0.42)

    def test_invalid_config(self):
        with pytest.raises(PowerModelError):
            ContinuousPowerModel(s_min=1.0)
        with pytest.raises(PowerModelError):
            ContinuousPowerModel(f_max_mhz=0)
        with pytest.raises(PowerModelError):
            ContinuousPowerModel(idle_fraction=2.0)

    def test_out_of_range_speed_rejected(self, continuous):
        with pytest.raises(PowerModelError):
            continuous.voltage_ratio(1.5)


class TestFactory:
    def test_named_models(self):
        assert make_power_model("transmeta").name == "transmeta"
        assert make_power_model("XSCALE").name == "xscale"
        assert make_power_model("continuous").name == "continuous"

    def test_unknown_name(self):
        with pytest.raises(PowerModelError, match="unknown power model"):
            make_power_model("pentium")

    def test_idle_fraction_passthrough(self):
        m = make_power_model("xscale", idle_fraction=0.1)
        assert m.idle_power == pytest.approx(0.1)

    def test_convenience_builders(self):
        assert transmeta_model().f_max_mhz == 700.0
        assert xscale_model().f_max_mhz == 1000.0
