"""Unit tests for the overhead model."""

import pytest

from repro.errors import PowerModelError
from repro.power import NO_OVERHEAD, PAPER_OVERHEAD, OverheadModel


class TestOverheadModel:
    def test_paper_defaults(self):
        assert PAPER_OVERHEAD.comp_cycles == 300.0
        assert PAPER_OVERHEAD.adjust_time == pytest.approx(0.005)  # 5 us in ms
        assert not PAPER_OVERHEAD.is_free

    def test_no_overhead_is_free(self):
        assert NO_OVERHEAD.is_free
        assert NO_OVERHEAD.adjust_time == 0.0

    def test_computation_time_scales_with_speed(self, xscale):
        ov = OverheadModel(comp_cycles=300, adjust_time=0.005,
                           time_unit_us=1000)
        t_fast = ov.computation_time(xscale, 1.0)
        t_slow = ov.computation_time(xscale, 0.15)
        # 300 cycles @ 1 GHz = 0.3 us = 0.0003 ms
        assert t_fast == pytest.approx(0.0003)
        assert t_slow == pytest.approx(t_fast / 0.15)

    def test_zero_cycles_costs_nothing(self, xscale):
        ov = OverheadModel(comp_cycles=0, adjust_time=0.005)
        assert ov.computation_time(xscale, 0.15) == 0.0
        assert ov.computation_energy(xscale, 0.15) == 0.0

    def test_adjustment_energy_at_max_power(self, xscale):
        ov = OverheadModel(comp_cycles=0, adjust_time=0.01)
        assert ov.adjustment_energy(xscale) == pytest.approx(
            xscale.power(1.0) * 0.01)

    def test_per_task_reserve_uses_slowest_speed(self, xscale):
        ov = OverheadModel(comp_cycles=300, adjust_time=0.005,
                           time_unit_us=1000)
        expected = ov.computation_time(xscale, xscale.s_min) + 0.005
        assert ov.per_task_reserve(xscale) == pytest.approx(expected)

    def test_computation_energy_at_current_speed(self, xscale):
        ov = OverheadModel(comp_cycles=300, adjust_time=0.0,
                           time_unit_us=1000)
        e = ov.computation_energy(xscale, 0.6)
        assert e == pytest.approx(
            xscale.power(0.6) * ov.computation_time(xscale, 0.6))

    @pytest.mark.parametrize("kwargs", [
        {"comp_cycles": -1},
        {"adjust_time": -0.1},
        {"time_unit_us": 0},
    ])
    def test_invalid_config_rejected(self, kwargs):
        with pytest.raises(PowerModelError):
            OverheadModel(**kwargs)


class TestWith:
    def test_replaces_named_field_only(self):
        base = OverheadModel(comp_cycles=300, adjust_time=0.005,
                             time_unit_us=1000)
        bumped = base.with_(adjust_time=0.02)
        assert bumped.adjust_time == 0.02
        assert bumped.comp_cycles == base.comp_cycles
        assert bumped.time_unit_us == base.time_unit_us
        assert base.adjust_time == 0.005  # original untouched

    def test_validation_reruns(self):
        with pytest.raises(PowerModelError):
            OverheadModel().with_(adjust_time=-1.0)

    def test_unknown_field_rejected(self):
        with pytest.raises(TypeError):
            OverheadModel().with_(no_such_field=1)
