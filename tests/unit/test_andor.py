"""Unit tests for the AndOrGraph container."""

import pytest

from repro.errors import GraphError
from repro.graph import AndOrGraph, Application, NodeKind


@pytest.fixture
def g():
    graph = AndOrGraph("t")
    graph.add_computation("A", 8, 5)
    graph.add_computation("B", 5, 3)
    graph.add_and("A1")
    graph.add_or("O1")
    graph.add_edge("A", "A1")
    graph.add_edge("A1", "B")
    graph.add_edge("B", "O1")
    return graph


class TestConstruction:
    def test_len_and_contains(self, g):
        assert len(g) == 4
        assert "A" in g and "O1" in g and "Z" not in g

    def test_duplicate_node_rejected(self, g):
        with pytest.raises(GraphError, match="duplicate node"):
            g.add_computation("A", 1, 1)

    def test_duplicate_edge_rejected(self, g):
        with pytest.raises(GraphError, match="duplicate edge"):
            g.add_edge("A", "A1")

    def test_self_loop_rejected(self, g):
        with pytest.raises(GraphError, match="self-loop"):
            g.add_edge("A", "A")

    def test_edge_to_unknown_node(self, g):
        with pytest.raises(GraphError, match="not in graph"):
            g.add_edge("A", "nope")
        with pytest.raises(GraphError, match="not in graph"):
            g.add_edge("nope", "A")

    def test_unknown_node_lookup(self, g):
        with pytest.raises(GraphError, match="unknown node"):
            g.node("nope")


class TestAccessors:
    def test_adjacency(self, g):
        assert g.successors("A") == ["A1"]
        assert g.predecessors("B") == ["A1"]
        assert g.in_degree("A") == 0 and g.out_degree("A") == 1

    def test_roots_and_sinks(self, g):
        assert g.roots() == ["A"]
        assert g.sinks() == ["O1"]

    def test_kind_filters(self, g):
        assert [n.name for n in g.computation_nodes()] == ["A", "B"]
        assert [n.name for n in g.and_nodes()] == ["A1"]
        assert [n.name for n in g.or_nodes()] == ["O1"]
        assert len(g.nodes(NodeKind.COMPUTATION)) == 2
        assert len(g.nodes()) == 4

    def test_edges_listing(self, g):
        assert set(g.edges()) == {("A", "A1"), ("A1", "B"), ("B", "O1")}

    def test_totals(self, g):
        assert g.total_wcet() == 13
        assert g.total_acet() == 8

    def test_descendants(self, g):
        assert set(g.descendants("A")) == {"A1", "B", "O1"}
        assert g.descendants("O1") == []


class TestBranchProbabilities:
    def test_set_and_get(self):
        g = AndOrGraph()
        g.add_computation("A", 1, 1)
        g.add_or("O")
        g.add_computation("B", 1, 1)
        g.add_computation("C", 1, 1)
        g.add_edge("A", "O")
        g.add_edge("O", "B")
        g.add_edge("O", "C")
        g.set_branch_probability("O", "B", 0.3)
        g.set_branch_probability("O", "C", 0.7)
        assert g.branch_probabilities("O") == {"B": 0.3, "C": 0.7}
        assert g.is_branching_or("O")

    def test_single_successor_implicit_probability(self):
        g = AndOrGraph()
        g.add_computation("A", 1, 1)
        g.add_or("O")
        g.add_computation("B", 1, 1)
        g.add_edge("A", "O")
        g.add_edge("O", "B")
        assert g.branch_probabilities("O") == {"B": 1.0}
        assert not g.is_branching_or("O")

    def test_probability_on_non_or_rejected(self, g):
        with pytest.raises(GraphError, match="OR nodes"):
            g.set_branch_probability("A1", "B", 0.5)

    def test_probability_on_non_successor_rejected(self, g):
        with pytest.raises(GraphError, match="not a successor"):
            g.set_branch_probability("O1", "A", 0.5)

    @pytest.mark.parametrize("p", [0.0, -0.1, 1.5])
    def test_invalid_probability_rejected(self, p):
        g = AndOrGraph()
        g.add_computation("A", 1, 1)
        g.add_or("O")
        g.add_computation("B", 1, 1)
        g.add_edge("A", "O")
        g.add_edge("O", "B")
        with pytest.raises(GraphError, match="probability"):
            g.set_branch_probability("O", "B", p)


class TestAlgorithms:
    def test_topological_order(self, g):
        order = g.topological_order()
        assert order.index("A") < order.index("A1") < order.index("B")

    def test_cycle_detection(self):
        g = AndOrGraph()
        g.add_computation("A", 1, 1)
        g.add_computation("B", 1, 1)
        g.add_edge("A", "B")
        g.add_edge("B", "A")
        assert not g.is_dag()
        with pytest.raises(GraphError, match="cycle"):
            g.topological_order()

    def test_copy_is_independent(self, g):
        h = g.copy("clone")
        h.add_computation("Z", 1, 1)
        assert "Z" in h and "Z" not in g
        assert set(h.edges()) == set(g.edges())


class TestApplication:
    def test_deadline_validation(self, g):
        with pytest.raises(GraphError, match="deadline"):
            Application(graph=g, deadline=0)

    def test_name_defaults_to_graph_name(self, g):
        app = Application(graph=g, deadline=10)
        assert app.name == "t"

    def test_with_deadline(self, g):
        app = Application(graph=g, deadline=10, meta={"k": 1})
        app2 = app.with_deadline(20)
        assert app2.deadline == 20 and app.deadline == 10
        assert app2.meta == {"k": 1}
        assert app2.graph is app.graph
