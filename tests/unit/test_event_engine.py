"""Direct unit tests for the event-driven engine.

The property suite proves equivalence with the serialized engine; these
tests pin concrete behaviours of the event engine itself so failures
localize (a broken event engine should not only show up as "the two
engines disagree").
"""

import numpy as np
import pytest

from repro.core import get_policy
from repro.errors import DeadlineMissError, SimulationError
from repro.graph import Application, GraphBuilder
from repro.offline import build_plan
from repro.power import NO_OVERHEAD, PAPER_OVERHEAD, xscale_model
from repro.sim import Realization, simulate_events
from tests.conftest import build_chain_graph, build_fork_graph, build_or_graph


def _run(graph, deadline, scheme, power, overhead, rl, m=2, **kwargs):
    app = Application(graph, deadline=deadline)
    policy = get_policy(scheme)
    reserve = overhead.per_task_reserve(power) \
        if policy.requires_reserve else 0.0
    plan = build_plan(app, m, reserve=reserve)
    run = policy.start_run(plan, power, overhead, realization=rl)
    return simulate_events(plan, run, power, overhead, rl, **kwargs)


class TestEventEngineBasics:
    def test_chain_at_max_speed(self, xscale):
        rl = Realization(actuals={"T0": 10, "T1": 10, "T2": 10},
                         choices={})
        res = _run(build_chain_graph(3), 100, "NPM", xscale,
                   NO_OVERHEAD, rl, m=1)
        assert res.finish_time == pytest.approx(30)
        assert res.n_tasks_run == 3

    def test_fork_parallelism(self, xscale):
        rl = Realization(actuals={"A": 8, "B": 5, "C": 4, "D": 5},
                         choices={})
        res = _run(build_fork_graph(), 100, "NPM", xscale, NO_OVERHEAD,
                   rl, collect_trace=True)
        rec = {r.name: r for r in res.trace}
        assert rec["B"].processor != rec["C"].processor
        assert res.finish_time == pytest.approx(18)

    def test_or_branch_selection(self, xscale):
        g = build_or_graph()
        plan = build_plan(Application(g, deadline=100), 2)
        c_sid = plan.structure.section_of_node("C").id
        rl = Realization(actuals={"A": 8, "B": 8, "C": 5, "D": 5},
                         choices={"O1": c_sid})
        res = _run(g, 100, "NPM", xscale, NO_OVERHEAD, rl,
                   collect_trace=True)
        assert {r.name for r in res.trace} == {"A", "C", "D"}
        # the branching choice is recorded (merge continuations too)
        assert res.path_choices["O1"] == str(c_sid)

    def test_sleeping_processor_respects_order(self, xscale):
        # Y ready before X but canonically after: must not run early
        b = GraphBuilder("order")
        b.task("A", 10, 10)
        b.task("X", 5, 5, after=["A"])
        b.task("Y", 1, 1, after=["A"])
        rl = Realization(actuals={"A": 10, "X": 5, "Y": 1}, choices={})
        res = _run(b.build_graph(), 100, "NPM", xscale, NO_OVERHEAD,
                   rl, collect_trace=True)
        rec = {r.name: r for r in res.trace}
        assert rec["Y"].start >= rec["X"].start

    def test_deadline_miss_raises(self, xscale):
        rl = Realization(actuals={"T0": 10, "T1": 10}, choices={})
        g = build_chain_graph(2)
        app = Application(g, deadline=20)
        plan = build_plan(app, 1)
        policy = get_policy("SPM")
        run = policy.start_run(plan, xscale, PAPER_OVERHEAD,
                               realization=rl)
        run.fixed_speed = 0.15
        with pytest.raises(DeadlineMissError):
            simulate_events(plan, run, xscale, PAPER_OVERHEAD, rl)

    def test_missing_actual_raises(self, xscale):
        rl = Realization(actuals={"T0": 5}, choices={})
        with pytest.raises(SimulationError):
            _run(build_chain_graph(2), 100, "NPM", xscale, NO_OVERHEAD,
                 rl, m=1)

    def test_gss_speed_changes_counted(self, xscale):
        rl = Realization(actuals={"T0": 10, "T1": 10}, choices={})
        res = _run(build_chain_graph(2), 60, "GSS", xscale,
                   PAPER_OVERHEAD, rl, m=1, collect_trace=True)
        assert res.n_speed_changes == sum(r.speed_changed
                                          for r in res.trace)
        assert res.met_deadline

    def test_energy_breakdown_totals(self, xscale):
        rng = np.random.default_rng(0)
        from repro.sim import sample_realization
        g = build_or_graph()
        plan = build_plan(Application(g, deadline=60), 2)
        rl = sample_realization(plan.structure, rng)
        run = get_policy("SS1").start_run(plan, xscale, PAPER_OVERHEAD,
                                          realization=rl)
        res = simulate_events(plan, run, xscale, PAPER_OVERHEAD, rl)
        assert res.total_energy == pytest.approx(
            res.energy.busy + res.energy.idle + res.energy.overhead)
