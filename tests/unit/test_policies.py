"""Unit tests for the scheduling policies (speed selection logic)."""

import numpy as np
import pytest

from repro.core import (
    get_policy,
    speculative_speed,
    spm_speed,
    two_speed_plan,
)
from repro.errors import SimulationError
from repro.graph import Application
from repro.offline import build_plan
from repro.power import NO_OVERHEAD, PAPER_OVERHEAD
from repro.sim import Realization, sample_realization, simulate
from tests.conftest import build_chain_graph, build_nested_or_graph, build_or_graph


@pytest.fixture
def chain_plan(xscale):
    app = Application(build_chain_graph(2, wcet=10, acet=5), deadline=50)
    return build_plan(app, 1)


class TestSpeculativeSpeedHelper:
    def test_rounds_up_to_level(self, xscale):
        # 20 units of work over 40 -> 0.5 -> snaps to 0.6
        assert speculative_speed(20, 40, xscale) == 0.6

    def test_clamps_to_max(self, xscale):
        assert speculative_speed(100, 10, xscale) == 1.0

    def test_clamps_to_min(self, xscale):
        assert speculative_speed(1, 100, xscale) == 0.15

    def test_zero_horizon_is_max(self, xscale):
        assert speculative_speed(10, 0, xscale) == 1.0


class TestSPM:
    def test_spm_speed_uses_static_slack(self, xscale, chain_plan):
        # t_worst=20, D=50 -> raw 0.4008 with switch time; snaps to 0.6
        s = spm_speed(chain_plan, xscale, PAPER_OVERHEAD)
        assert s == 0.6

    def test_spm_exact_level(self, xscale):
        app = Application(build_chain_graph(2, wcet=10, acet=5),
                          deadline=50)
        plan = build_plan(app, 1)
        s = spm_speed(plan, xscale, NO_OVERHEAD)
        assert s == 0.4  # 20/50 exactly on a level

    def test_spm_no_slack_stays_max_without_switch(self, xscale):
        app = Application(build_chain_graph(2, wcet=10, acet=5),
                          deadline=20)
        plan = build_plan(app, 1)
        assert spm_speed(plan, xscale, PAPER_OVERHEAD) == 1.0
        rl = Realization(actuals={"T0": 10, "T1": 10}, choices={})
        run = get_policy("SPM").start_run(plan, xscale, PAPER_OVERHEAD,
                                          realization=rl)
        res = simulate(plan, run, xscale, PAPER_OVERHEAD, rl)
        assert res.n_speed_changes == 0
        assert res.met_deadline

    def test_spm_charges_one_switch_per_processor(self, xscale):
        app = Application(build_chain_graph(2, wcet=10, acet=5),
                          deadline=100)
        plan = build_plan(app, 2)
        rl = Realization(actuals={"T0": 10, "T1": 10}, choices={})
        run = get_policy("SPM").start_run(plan, xscale, PAPER_OVERHEAD,
                                          realization=rl)
        res = simulate(plan, run, xscale, PAPER_OVERHEAD, rl)
        assert res.n_speed_changes == 2  # both processors switch once

    def test_spm_ignores_alpha(self, xscale):
        # identical graphs except ACET produce the same SPM speed
        app_lo = Application(build_chain_graph(2, wcet=10, acet=1),
                             deadline=50)
        app_hi = Application(build_chain_graph(2, wcet=10, acet=9),
                             deadline=50)
        s_lo = spm_speed(build_plan(app_lo, 1), xscale, PAPER_OVERHEAD)
        s_hi = spm_speed(build_plan(app_hi, 1), xscale, PAPER_OVERHEAD)
        assert s_lo == s_hi


class TestSS1:
    def test_floor_is_constant_level(self, xscale, chain_plan):
        run = get_policy("SS1").start_run(chain_plan, xscale,
                                          PAPER_OVERHEAD)
        # t_avg=10, D=50 -> 0.2 -> snaps to 0.4
        assert run.floor(0) == 0.4
        assert run.floor(25) == 0.4

    def test_ss1_runs_at_least_at_floor(self, xscale, chain_plan):
        rl = Realization(actuals={"T0": 5, "T1": 5}, choices={})
        run = get_policy("SS1").start_run(chain_plan, xscale, NO_OVERHEAD,
                                          realization=rl)
        res = simulate(chain_plan, run, xscale, NO_OVERHEAD, rl,
                       collect_trace=True)
        assert all(rec.speed >= 0.4 for rec in res.trace)


class TestSS2:
    def test_two_speed_plan_brackets(self, xscale):
        f_lo, f_hi, theta = two_speed_plan(t_avg=25, deadline=50,
                                           power=xscale)
        assert (f_lo, f_hi) == (0.4, 0.6)
        # work balance: 0.4*theta + 0.6*(50-theta) = 25
        assert theta == pytest.approx(50 * (0.6 - 0.5) / 0.2)

    def test_exact_level_degenerates(self, xscale):
        f_lo, f_hi, theta = two_speed_plan(t_avg=20, deadline=50,
                                           power=xscale)
        assert f_lo == f_hi == 0.4
        assert theta == 0.0

    def test_below_smin_degenerates(self, xscale):
        f_lo, f_hi, theta = two_speed_plan(t_avg=1, deadline=100,
                                           power=xscale)
        assert f_lo == f_hi == 0.15

    def test_floor_steps_at_theta(self, xscale):
        app = Application(build_chain_graph(2, wcet=10, acet=6.25),
                          deadline=50)
        plan = build_plan(app, 1)  # t_avg = 12.5 -> raw 0.25
        run = get_policy("SS2").start_run(plan, xscale, PAPER_OVERHEAD)
        assert run.floor(0.0) == run.f_lo
        assert run.floor(run.theta + 1e-9) == run.f_hi
        assert run.f_lo < run.f_hi

    def test_average_work_fits_deadline(self, xscale):
        # integral of the two-speed profile equals the speculated work
        f_lo, f_hi, theta = two_speed_plan(t_avg=25, deadline=50,
                                           power=xscale)
        assert f_lo * theta + f_hi * (50 - theta) == pytest.approx(25)


class TestAS:
    def test_respeculates_at_or(self, xscale):
        g = build_or_graph()
        app = Application(g, deadline=60)
        plan = build_plan(app, 2)
        run = get_policy("AS").start_run(plan, xscale, PAPER_OVERHEAD)
        initial = run.floor(0.0)
        st = plan.structure
        c_sid = st.section_of_node("C").id
        # fire the OR very late: little time left, floor must rise
        run.on_or_fired("O1", c_sid, t=55.0)
        assert run.floor(55.0) >= initial
        assert run.floor(55.0) == 1.0  # 6 units avg left in 5 time units

    def test_short_branch_lowers_floor(self, xscale):
        g = build_nested_or_graph()
        app = Application(g, deadline=40)
        plan = build_plan(app, 2)
        run = get_policy("AS").start_run(plan, xscale, PAPER_OVERHEAD)
        st = plan.structure
        c_sid = st.section_of_node("C").id  # the short branch
        b_sid = st.section_of_node("B").id  # the long branch
        run.on_or_fired("O1", c_sid, t=5.0)
        floor_short = run.floor(5.0)
        run2 = get_policy("AS").start_run(plan, xscale, PAPER_OVERHEAD)
        run2.on_or_fired("O1", b_sid, t=5.0)
        floor_long = run2.floor(5.0)
        assert floor_short <= floor_long


class TestOracle:
    def test_oracle_requires_realization(self, xscale, chain_plan):
        with pytest.raises(SimulationError, match="needs the realization"):
            get_policy("ORACLE").start_run(chain_plan, xscale,
                                           PAPER_OVERHEAD)

    def test_oracle_picks_single_stretch_speed(self, xscale, chain_plan):
        rl = Realization(actuals={"T0": 10, "T1": 10}, choices={})
        run = get_policy("ORACLE").start_run(chain_plan, xscale,
                                             NO_OVERHEAD, realization=rl)
        # 20 units of actual work over 50 -> 0.4 exactly
        assert run.fixed_speed == 0.4

    def test_oracle_meets_deadline(self, xscale, chain_plan):
        rng = np.random.default_rng(0)
        for _ in range(20):
            rl = sample_realization(chain_plan.structure, rng)
            run = get_policy("ORACLE").start_run(
                chain_plan, xscale, PAPER_OVERHEAD, realization=rl)
            res = simulate(chain_plan, run, xscale, PAPER_OVERHEAD, rl)
            assert res.met_deadline
