"""Unit tests for frame-stream (mission) simulation."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.workloads import (
    atr_graph,
    compare_streams,
    render_stream_report,
    simulate_stream,
    worst_case_length,
)
from tests.conftest import build_or_graph


@pytest.fixture(scope="module")
def period():
    return worst_case_length(build_or_graph(), 2) / 0.5


class TestSimulateStream:
    def test_aggregates_consistent(self, period):
        r = simulate_stream(build_or_graph(), period, "GSS", 20, seed=1)
        assert r.n_frames == 20
        assert r.response_times.shape == (20,)
        assert r.total_energy == pytest.approx(r.frame_energies.sum())
        assert r.mission_length == pytest.approx(20 * period)
        assert r.avg_power == pytest.approx(
            r.total_energy / r.mission_length)

    def test_all_frames_meet_period(self, period):
        r = simulate_stream(build_or_graph(), period, "GSS", 30, seed=2)
        assert r.worst_response <= period * (1 + 1e-9)
        assert np.all(r.response_times <= period * (1 + 1e-9))

    def test_deterministic_per_seed(self, period):
        a = simulate_stream(build_or_graph(), period, "AS", 10, seed=9)
        b = simulate_stream(build_or_graph(), period, "AS", 10, seed=9)
        assert np.array_equal(a.response_times, b.response_times)
        assert a.total_energy == b.total_energy

    def test_jitter_zero_for_single_frame(self, period):
        r = simulate_stream(build_or_graph(), period, "NPM", 1, seed=0)
        assert r.response_jitter == 0.0

    def test_invalid_args(self, period):
        with pytest.raises(ConfigError):
            simulate_stream(build_or_graph(), period, "GSS", 0)
        with pytest.raises(ConfigError):
            simulate_stream(build_or_graph(), -1.0, "GSS", 5)


class TestCompareStreams:
    def test_paired_frames_across_schemes(self, period):
        out = compare_streams(build_or_graph(), period,
                              ["NPM", "GSS"], 15, seed=4)
        # NPM and GSS saw the same realizations: NPM responds faster on
        # every frame (it never slows down)
        assert np.all(out["NPM"].response_times
                      <= out["GSS"].response_times + 1e-9)
        assert out["GSS"].total_energy < out["NPM"].total_energy

    def test_atr_mission_energy_ordering(self):
        g = atr_graph()
        period = worst_case_length(g, 2) / 0.5
        out = compare_streams(g, period, ["NPM", "SPM", "GSS"], 20,
                              seed=5)
        assert out["GSS"].total_energy < out["SPM"].total_energy \
            < out["NPM"].total_energy

    def test_report_rendering(self, period):
        out = compare_streams(build_or_graph(), period,
                              ["NPM", "GSS"], 5, seed=6)
        text = render_stream_report(out)
        assert "E/E_NPM" in text
        assert "GSS" in text and "NPM" in text

    def test_report_requires_baseline(self, period):
        out = compare_streams(build_or_graph(), period, ["GSS"], 5)
        with pytest.raises(ConfigError, match="baseline"):
            render_stream_report(out)

    def test_npm_stream_has_no_switches(self, period):
        r = simulate_stream(build_or_graph(), period, "NPM", 10)
        assert r.total_switches == 0
