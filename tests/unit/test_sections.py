"""Unit tests for the program-section decomposition (OR semantics)."""

import pytest

from repro.errors import GraphError
from repro.graph import GraphBuilder
from repro.graph.sections import SectionStructure
from tests.conftest import build_fork_graph, build_or_graph


class TestDecomposition:
    def test_pure_and_graph_is_one_section(self):
        st = SectionStructure(build_fork_graph())
        assert len(st.sections) == 1
        root = st.root
        assert root.is_root and root.is_terminal
        assert set(root.nodes) == {"A", "A1", "B", "C", "A2", "D"}

    def test_or_graph_sections(self):
        st = SectionStructure(build_or_graph())
        assert len(st.sections) == 4
        assert st.root.nodes == ["A"]
        assert st.root.exit_or == "O1"
        b_sec = st.section_of_node("B")
        c_sec = st.section_of_node("C")
        assert b_sec.id != c_sec.id
        assert b_sec.entry_or == "O1" and b_sec.exit_or == "O2"
        d_sec = st.section_of_node("D")
        assert d_sec.entry_or == "O2" and d_sec.is_terminal

    def test_branches_with_probabilities(self):
        st = SectionStructure(build_or_graph())
        branches = dict(st.branches("O1"))
        assert branches[st.section_of_node("B").id] == 0.3
        assert branches[st.section_of_node("C").id] == 0.7
        # merge OR continues into D with probability 1
        assert st.branches("O2") == [(st.section_of_node("D").id, 1.0)]

    def test_or_node_belongs_to_no_section(self):
        st = SectionStructure(build_or_graph())
        with pytest.raises(GraphError, match="section node"):
            st.section_of_node("O1")

    def test_subgraph_contains_only_internal_edges(self):
        st = SectionStructure(build_or_graph())
        sub = st.subgraph(st.root.id)
        assert sub.node_names == ["A"]
        assert sub.edges() == []

    def test_zero_length_section_of_and_nodes(self):
        # OR -> AND passthrough -> OR is a legal empty path
        b = GraphBuilder("skip")
        b.task("A", 4, 2)
        b.or_node("O1", after=["A"])
        b.task("B", 6, 3, after=["O1"])
        b.and_node("skip", after=["O1"])
        b.probability("O1", "B", 0.5)
        b.probability("O1", "skip", 0.5)
        b.or_merge("O2", ["B", "skip"])
        b.task("C", 2, 1, after=["O2"])
        st = SectionStructure(b.graph)
        skip_sec = st.section_of_node("skip")
        assert skip_sec.nodes == ["skip"]


class TestStructuralRules:
    def test_or_to_or_edge_rejected(self):
        b = GraphBuilder("bad")
        b.task("A", 1, 1)
        b.or_node("O1", after=["A"])
        b.or_node("O2", after=["O1"])
        b.task("B", 1, 1, after=["O2"])
        with pytest.raises(GraphError, match="OR->OR"):
            SectionStructure(b.graph)

    def test_or_successor_with_other_preds_rejected(self):
        b = GraphBuilder("bad")
        b.task("A", 1, 1)
        b.task("X", 1, 1)
        b.or_node("O1", after=["A"])
        b.task("B", 1, 1, after=["O1"])
        b.edge("X", "B")  # B depends on both the OR and a plain task
        with pytest.raises(GraphError, match="rule 2|rule 3"):
            SectionStructure(b.graph)

    def test_section_feeding_two_ors_rejected(self):
        b = GraphBuilder("bad")
        b.task("A", 1, 1)
        b.or_node("O1", after=["A"])
        b.or_node("O2", after=["A"])
        b.task("B", 1, 1, after=["O1"])
        b.task("C", 1, 1, after=["O2"])
        with pytest.raises(GraphError, match="rule 4"):
            SectionStructure(b.graph)

    def test_two_or_successors_in_same_section_rejected(self):
        b = GraphBuilder("bad")
        b.task("A", 1, 1)
        b.or_node("O1", after=["A"])
        b.task("B", 1, 1, after=["O1"])
        b.task("C", 1, 1, after=["O1"])
        b.edge("B", "C")  # ties the two "alternative" paths together
        b.probability("O1", "B", 0.5)
        b.probability("O1", "C", 0.5)
        with pytest.raises(GraphError):
            SectionStructure(b.graph)

    def test_missing_probabilities_rejected(self):
        b = GraphBuilder("bad")
        b.task("A", 1, 1)
        b.or_node("O1", after=["A"])
        b.task("B", 1, 1, after=["O1"])
        b.task("C", 1, 1, after=["O1"])
        b.probability("O1", "B", 0.5)
        with pytest.raises(GraphError, match="lacks probabilities"):
            SectionStructure(b.graph)

    def test_probabilities_not_summing_to_one_rejected(self):
        b = GraphBuilder("bad")
        b.task("A", 1, 1)
        b.or_node("O1", after=["A"])
        b.task("B", 1, 1, after=["O1"])
        b.task("C", 1, 1, after=["O1"])
        b.probability("O1", "B", 0.5)
        b.probability("O1", "C", 0.4)
        with pytest.raises(GraphError, match="sum to"):
            SectionStructure(b.graph)

    def test_or_without_predecessor_rejected(self):
        b = GraphBuilder("bad")
        b.or_node("O1")
        b.task("B", 1, 1, after=["O1"])
        # rejected either as a predecessor-less OR or as a missing root
        with pytest.raises(GraphError,
                           match="no predecessor|root section"):
            SectionStructure(b.graph)

    def test_two_root_sections_rejected(self):
        b = GraphBuilder("bad")
        b.task("A", 1, 1)
        b.task("B", 1, 1)
        b.or_node("O1", after=["A"])
        b.task("C", 1, 1, after=["O1"])
        b.edge("B", "C") if False else None
        # B is disconnected from A's component -> a second root section
        with pytest.raises(GraphError, match="root section"):
            SectionStructure(b.graph)

    def test_branches_of_non_or_raises(self):
        st = SectionStructure(build_or_graph())
        with pytest.raises(GraphError, match="not an OR node"):
            st.branches("A")
