"""Unit tests for paired statistical comparison."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.experiments import (
    RunConfig,
    compare_all,
    evaluate_application,
    paired_comparison,
    render_comparison,
    win_matrix,
)
from repro.workloads import application_with_load, figure3_graph


class TestPairedComparison:
    def test_clear_difference_detected(self, rng):
        base = rng.normal(0.5, 0.05, 200)
        c = paired_comparison("A", base - 0.02, "B", base)
        assert c.significant
        assert c.winner == "A"
        assert c.mean_diff == pytest.approx(-0.02)

    def test_identical_samples_tie(self):
        x = np.linspace(0.4, 0.6, 50)
        c = paired_comparison("A", x, "B", x.copy())
        assert not c.significant
        assert c.winner is None
        assert c.p_value == 1.0

    def test_noise_is_a_tie(self, rng):
        a = rng.normal(0.5, 0.05, 100)
        b = a + rng.normal(0.0, 0.0005, 100)  # tiny symmetric jitter
        c = paired_comparison("A", a, "B", b)
        # difference is orders of magnitude below the jitter CI
        assert abs(c.mean_diff) < 0.001

    def test_pairing_beats_unpaired_intuition(self, rng):
        # large shared variance, small consistent difference: paired
        # test detects it even though the two marginal distributions
        # overlap almost entirely
        shared = rng.normal(0.5, 0.2, 300)
        c = paired_comparison("A", shared - 0.01, "B", shared)
        assert c.significant and c.winner == "A"

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ConfigError):
            paired_comparison("A", np.ones(3), "B", np.ones(4))

    def test_too_few_runs_rejected(self):
        with pytest.raises(ConfigError):
            paired_comparison("A", np.ones(1), "B", np.ones(1))


class TestCompareAll:
    @pytest.fixture(scope="class")
    def result(self):
        app = application_with_load(figure3_graph(), 0.6, 2)
        return evaluate_application(
            app, RunConfig(n_runs=200, power_model="xscale", seed=3))

    def test_pair_count(self, result):
        comps = compare_all(result, schemes=["GSS", "SS1", "AS"])
        assert len(comps) == 3

    def test_unknown_scheme_rejected(self, result):
        with pytest.raises(ConfigError, match="not in result"):
            compare_all(result, schemes=["GSS", "EDF"])

    def test_render(self, result):
        text = render_comparison(compare_all(result))
        assert "Δ mean" in text and "verdict" in text

    def test_win_matrix_counts(self, result):
        comps = compare_all(result, schemes=["GSS", "SS1", "AS"])
        wins = win_matrix(comps)
        assert set(wins) == {"GSS", "SS1", "AS"}
        assert sum(wins.values()) <= len(comps)

    def test_paper_claim_gss_beats_ss1_on_xscale(self, result):
        """The headline, now with a p-value."""
        comps = compare_all(result, schemes=["GSS", "SS1"])
        assert comps[0].winner == "GSS"
