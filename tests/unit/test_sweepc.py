"""Sweep-compiler internals: constant stacking, compatibility gates,
single-point sweeps and the stacked-program cache.

The golden suite (``tests/property/test_fused_equivalence``) pins the
*results* of fused sweeps; these tests pin the mechanisms — when a
per-point constant column collapses to a scalar, when two programs
refuse to stack, and when a re-swept point set reuses the cached
stacked program instead of re-stacking.
"""

import numpy as np

from repro.experiments import RunConfig, evaluate_application
from repro.experiments.fused import evaluate_points_fused
from repro.offline import build_plan
from repro.sim.compiled import CompiledPlan, compile_plan
from repro.sim.sweepc import (
    StackedProgram,
    _stack_values,
    clear_stacked_cache,
    programs_compatible,
    stack_programs,
    stacked_cache_stats,
)
from repro.workloads import application_with_load, atr_graph, figure3_graph
from tests.conftest import build_fork_graph, build_nested_or_graph


def _prog(graph, load, m=2):
    app = application_with_load(graph, load, m)
    return compile_plan(build_plan(app, m))


class TestStackValues:
    def test_all_equal_collapses_to_scalar(self):
        out = _stack_values([3.5, 3.5, 3.5])
        assert isinstance(out, float) and out == 3.5

    def test_single_value_collapses_to_scalar(self):
        out = _stack_values([2.25])
        assert isinstance(out, float) and out == 2.25

    def test_mixed_values_stay_a_vector(self):
        out = _stack_values([1.0, 2.0, 1.0])
        assert isinstance(out, np.ndarray)
        assert out.tolist() == [1.0, 2.0, 1.0]  # point order preserved

    def test_nan_never_collapses(self):
        # NaN != NaN, so NaN columns conservatively stay vectors —
        # gathering identical NaNs per point is still bit-identical
        out = _stack_values([np.nan, np.nan])
        assert isinstance(out, np.ndarray)
        assert np.isnan(out).all()

    def test_mixed_nan_and_finite_stays_a_vector(self):
        out = _stack_values([np.nan, 4.0])
        assert isinstance(out, np.ndarray)
        assert np.isnan(out[0]) and out[1] == 4.0


class TestCompatibilityGates:
    def test_same_graph_different_loads_compatible(self):
        a = _prog(atr_graph(), 0.4)
        b = _prog(atr_graph(), 0.8)
        assert programs_compatible(a, b)
        assert programs_compatible(a, a)

    def test_different_graphs_incompatible(self):
        assert not programs_compatible(_prog(atr_graph(), 0.5),
                                       _prog(figure3_graph(), 0.5))
        assert stack_programs([_prog(atr_graph(), 0.5),
                               _prog(figure3_graph(), 0.5)]) is None

    def test_different_processor_counts_incompatible(self):
        assert not programs_compatible(_prog(build_fork_graph(), 0.5, m=2),
                                       _prog(build_fork_graph(), 0.5, m=4))

    def test_empty_point_set_stacks_to_none(self):
        assert stack_programs([]) is None


class TestSinglePointSweeps:
    def test_single_program_stacks(self):
        prog = _prog(build_nested_or_graph(), 0.6)
        stacked = stack_programs([prog])
        assert isinstance(stacked, StackedProgram)
        assert stacked.n_points == 1
        # one point: every column agrees with itself, so everything
        # collapses to scalars — including the deadline
        assert stacked.deadline == prog.deadline

    def test_single_point_fused_equals_per_point(self):
        cfg = RunConfig(schemes=("SPM", "GSS"), n_runs=12, seed=3)
        app = application_with_load(atr_graph(), 0.6, cfg.n_processors)
        fused = evaluate_points_fused([app], [cfg])
        assert fused is not None and len(fused) == 1
        ref = evaluate_application(app, cfg)
        for scheme in cfg.schemes:
            assert np.array_equal(fused[0].absolute[scheme],
                                  ref.absolute[scheme]), scheme
            assert np.array_equal(fused[0].normalized[scheme],
                                  ref.normalized[scheme]), scheme


class TestStackedProgramCache:
    def test_identical_point_sets_reuse_the_stacked_program(self):
        clear_stacked_cache()
        progs = [_prog(atr_graph(), ld) for ld in (0.3, 0.6, 0.9)]
        first = stack_programs(progs)
        second = stack_programs(progs)
        assert second is first
        stats = stacked_cache_stats()
        assert stats["hits"] == 1
        assert stats["misses"] == 1
        assert stats["size"] == 1

    def test_unfingerprinted_programs_are_not_cached(self):
        # programs built outside compile_plan carry no fingerprint, so
        # there is no safe cache key — each stack builds fresh
        clear_stacked_cache()
        app = application_with_load(build_nested_or_graph(), 0.5, 2)
        plan = build_plan(app, 2)
        progs = [CompiledPlan(plan), CompiledPlan(plan)]
        assert all(p.fingerprint is None for p in progs)
        first = stack_programs(progs)
        second = stack_programs(progs)
        assert first is not None and second is not None
        assert second is not first
        stats = stacked_cache_stats()
        assert stats["misses"] == 2 and stats["size"] == 0

    def test_clear_resets_counters(self):
        progs = [_prog(atr_graph(), ld) for ld in (0.2, 0.8)]
        stack_programs(progs)
        clear_stacked_cache()
        assert stacked_cache_stats() == {"hits": 0, "misses": 0, "size": 0}
