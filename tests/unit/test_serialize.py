"""Unit tests for JSON (de)serialization."""

import pytest

from repro.errors import GraphError
from repro.graph import (
    Application,
    application_from_dict,
    application_to_dict,
    dumps,
    graph_from_dict,
    graph_to_dict,
    loads,
)
from tests.conftest import build_nested_or_graph, build_or_graph


class TestGraphRoundTrip:
    def test_round_trip_preserves_structure(self):
        g = build_or_graph()
        g2 = graph_from_dict(graph_to_dict(g))
        assert g2.name == g.name
        assert set(g2.node_names) == set(g.node_names)
        assert set(g2.edges()) == set(g.edges())
        assert g2.branch_probabilities("O1") == g.branch_probabilities("O1")

    def test_round_trip_preserves_stats(self):
        g = build_or_graph()
        g2 = graph_from_dict(graph_to_dict(g))
        for node in g.computation_nodes():
            n2 = g2.node(node.name)
            assert n2.wcet == node.wcet and n2.acet == node.acet

    def test_round_trip_nested(self):
        g = build_nested_or_graph()
        d = graph_to_dict(g)
        g2 = graph_from_dict(d)
        assert graph_to_dict(g2) == d

    def test_single_successor_or_has_no_probability_entry(self):
        g = build_or_graph()
        d = graph_to_dict(g)
        assert "O2" not in d["branch_probabilities"]
        assert "O1" in d["branch_probabilities"]

    def test_malformed_dict_rejected(self):
        with pytest.raises(GraphError, match="malformed"):
            graph_from_dict({"nodes": [{"name": "A"}]})  # kind missing

    def test_invalid_structure_rejected_on_load(self):
        g = build_or_graph()
        d = graph_to_dict(g)
        d["branch_probabilities"]["O1"]["B"] = 0.9  # sums to 1.6 now
        with pytest.raises(GraphError):
            graph_from_dict(d)

    def test_validation_can_be_skipped(self):
        g = build_or_graph()
        d = graph_to_dict(g)
        d["branch_probabilities"]["O1"]["B"] = 0.9
        g2 = graph_from_dict(d, validate=False)
        assert "O1" in g2.node_names


class TestApplicationRoundTrip:
    def test_json_round_trip(self):
        app = Application(graph=build_or_graph(), deadline=40.5,
                          name="demo", meta={"load": 0.5})
        app2 = loads(dumps(app))
        assert app2.deadline == 40.5
        assert app2.name == "demo"
        assert app2.meta == {"load": 0.5}
        assert set(app2.graph.edges()) == set(app.graph.edges())

    def test_dict_round_trip(self):
        app = Application(graph=build_or_graph(), deadline=10)
        d = application_to_dict(app)
        app2 = application_from_dict(d)
        assert application_to_dict(app2) == d

    def test_invalid_json_rejected(self):
        with pytest.raises(GraphError, match="invalid JSON"):
            loads("{nope")

    def test_missing_deadline_rejected(self):
        d = {"graph": graph_to_dict(build_or_graph())}
        with pytest.raises(GraphError, match="malformed"):
            application_from_dict(d)
