"""The two engine implementations must agree exactly.

``repro.sim.engine`` derives dispatch times in serialized canonical
order; ``repro.sim.event_engine`` implements Figure 2 literally with
processor state machines and sleep/wake-up.  They share no simulation
code paths, so agreement across random applications, schemes, power
models and processor counts is strong evidence both implement the
protocol the paper specifies.
"""

import random

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import ALL_SCHEMES, get_policy
from repro.graph import random_graph
from repro.offline import build_plan
from repro.power import NO_OVERHEAD, PAPER_OVERHEAD, transmeta_model, xscale_model
from repro.sim import sample_realization, simulate
from repro.sim.event_engine import simulate_events
from repro.workloads import application_with_load, atr_graph, figure3_graph

_POWER = {"transmeta": transmeta_model(), "xscale": xscale_model()}


def _both(plan, scheme, power, overhead, rl):
    policy = get_policy(scheme)
    run_a = policy.start_run(plan, power, overhead, realization=rl)
    res_a = simulate(plan, run_a, power, overhead, rl,
                     collect_trace=True)
    run_b = policy.start_run(plan, power, overhead, realization=rl)
    res_b = simulate_events(plan, run_b, power, overhead, rl,
                            collect_trace=True)
    return res_a, res_b


def _assert_identical(res_a, res_b):
    assert res_a.finish_time == pytest.approx(res_b.finish_time,
                                              abs=1e-9)
    assert res_a.total_energy == pytest.approx(res_b.total_energy,
                                               rel=1e-9)
    assert res_a.n_speed_changes == res_b.n_speed_changes
    assert res_a.n_tasks_run == res_b.n_tasks_run
    assert res_a.path_choices == res_b.path_choices
    rec_a = {r.name: r for r in res_a.trace}
    rec_b = {r.name: r for r in res_b.trace}
    assert set(rec_a) == set(rec_b)
    for name in rec_a:
        a, b = rec_a[name], rec_b[name]
        assert a.start == pytest.approx(b.start, abs=1e-9), name
        assert a.finish == pytest.approx(b.finish, abs=1e-9), name
        assert a.speed == pytest.approx(b.speed, abs=1e-12), name
        assert a.processor == b.processor, name


@settings(max_examples=30, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(seed=st.integers(0, 10_000),
       scheme=st.sampled_from(ALL_SCHEMES),
       model=st.sampled_from(["transmeta", "xscale"]),
       m=st.sampled_from([1, 2, 3, 4]))
def test_engines_agree_on_random_graphs(seed, scheme, model, m):
    power = _POWER[model]
    graph = random_graph(random.Random(seed))
    app = application_with_load(graph, 0.6, m)
    policy = get_policy(scheme)
    overhead = NO_OVERHEAD if scheme == "NPM" else PAPER_OVERHEAD
    reserve = overhead.per_task_reserve(power) if policy.requires_reserve \
        else 0.0
    plan = build_plan(app, m, reserve=reserve)
    rng = np.random.default_rng(seed)
    rl = sample_realization(plan.structure, rng)
    _assert_identical(*_both(plan, scheme, power, overhead, rl))


@pytest.mark.parametrize("graph_fn", [atr_graph, figure3_graph])
@pytest.mark.parametrize("scheme", ["GSS", "AS", "SPM"])
def test_engines_agree_on_paper_workloads(graph_fn, scheme):
    power = transmeta_model()
    app = application_with_load(graph_fn(), 0.5, 2)
    policy = get_policy(scheme)
    reserve = PAPER_OVERHEAD.per_task_reserve(power) \
        if policy.requires_reserve else 0.0
    plan = build_plan(app, 2, reserve=reserve)
    rng = np.random.default_rng(99)
    for _ in range(25):
        rl = sample_realization(plan.structure, rng)
        _assert_identical(*_both(plan, scheme, power, PAPER_OVERHEAD,
                                 rl))
