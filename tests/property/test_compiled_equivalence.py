"""Golden equivalence: the compiled kernels equal the dict engine bit for bit.

The compiled engine (:mod:`repro.sim.compiled`) promises *exact* float
equality with the reference dict engine — same energies, same finish
times, same traces, same path keys — because it performs the same float
operations in the same order.  These tests hold it to that promise with
``==`` (never ``approx``) across every registered scheme, AND-only and
multi-OR graphs, multiple seeds, both discrete power tables, the
worst-case realization and the batch evaluation paths (scalar kernel,
vectorized fixed-speed batch, vectorized dynamic batch).

The fixed graphs are complemented by hypothesis fuzzing over
:func:`repro.graph.random_gen.random_graph`: any graph the generator can
produce, at any feasible load, must agree bit for bit too.  A failing
example shrinks to (and prints) the small integer seed that rebuilds the
offending graph exactly.
"""

import random

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import ALL_SCHEMES, get_policy
from repro.experiments import RunConfig, evaluate_application
from repro.graph import GraphGenConfig, random_graph
from repro.power import NO_OVERHEAD, PAPER_OVERHEAD, transmeta_model, xscale_model
from repro.sim import (
    sample_realization,
    simulate,
    simulate_compiled,
    worst_case_realization,
)
from repro.offline import build_plan
from repro.workloads import application_with_load, atr_graph
from tests.conftest import (
    build_chain_graph,
    build_fork_graph,
    build_nested_or_graph,
    build_or_graph,
)

SEEDS = (7, 2002, 31337)

GRAPHS = {
    "chain": build_chain_graph(6),        # AND-only, single section
    "fork": build_fork_graph(),           # AND fork/join, no OR choice
    "or": build_or_graph(),               # one branching OR
    "nested": build_nested_or_graph(),    # two chained ORs (multi-OR)
}


def _both(plan, scheme, power, overhead, rl):
    policy = get_policy(scheme)
    run_a = policy.start_run(plan, power, overhead, realization=rl)
    res_a = simulate(plan, run_a, power, overhead, rl, collect_trace=True)
    run_b = policy.start_run(plan, power, overhead, realization=rl)
    res_b = simulate_compiled(plan, run_b, power, overhead, rl,
                              collect_trace=True)
    return res_a, res_b


def _assert_bit_identical(res_a, res_b):
    """Exact equality — no approx anywhere."""
    assert res_a.scheme == res_b.scheme
    assert res_a.finish_time == res_b.finish_time
    assert res_a.energy.busy == res_b.energy.busy
    assert res_a.energy.idle == res_b.energy.idle
    assert res_a.energy.overhead == res_b.energy.overhead
    assert res_a.total_energy == res_b.total_energy
    assert res_a.n_speed_changes == res_b.n_speed_changes
    assert res_a.n_tasks_run == res_b.n_tasks_run
    assert res_a.path_choices == res_b.path_choices
    assert len(res_a.trace) == len(res_b.trace)
    for a, b in zip(res_a.trace, res_b.trace):
        assert a.name == b.name
        assert a.processor == b.processor
        assert a.start == b.start
        assert a.finish == b.finish
        assert a.speed == b.speed
        assert a.actual_cycles == b.actual_cycles
        assert a.energy == b.energy
        assert a.speed_changed == b.speed_changed


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("gname", sorted(GRAPHS))
@pytest.mark.parametrize("scheme", ALL_SCHEMES)
def test_single_run_equivalence(gname, scheme, seed):
    """Scalar compiled kernel == dict engine, with traces, exactly."""
    power = transmeta_model()
    app = application_with_load(GRAPHS[gname], 0.7, 2)
    overhead = NO_OVERHEAD if scheme == "NPM" else PAPER_OVERHEAD
    policy = get_policy(scheme)
    reserve = overhead.per_task_reserve(power) if policy.requires_reserve \
        else 0.0
    plan = build_plan(app, 2, reserve=reserve)
    rng = np.random.default_rng(seed)
    for _ in range(5):
        rl = sample_realization(plan.structure, rng)
        _assert_bit_identical(*_both(plan, scheme, power, overhead, rl))


@pytest.mark.parametrize("scheme", ALL_SCHEMES)
def test_worst_case_realization_equivalence(scheme):
    """Zero-slack runs (every task at WCET) agree exactly too."""
    power = xscale_model()
    app = application_with_load(build_nested_or_graph(), 0.8, 2)
    overhead = NO_OVERHEAD if scheme == "NPM" else PAPER_OVERHEAD
    policy = get_policy(scheme)
    reserve = overhead.per_task_reserve(power) if policy.requires_reserve \
        else 0.0
    plan = build_plan(app, 2, reserve=reserve)
    rl = worst_case_realization(plan.structure, plan)
    _assert_bit_identical(*_both(plan, scheme, power, overhead, rl))


@pytest.mark.usefixtures("kernel_tier")
@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("gname", ["fork", "nested"])
def test_evaluation_equivalence(gname, seed):
    """evaluate_application(engine=...) arrays are equal bit for bit.

    Exercises the batch machinery the single-run test cannot: the
    vectorized fixed-speed path (NPM/SPM), the vectorized dynamic path
    (GSS/SS1/SS2/AS/PS), path grouping and the oracle's per-run
    realization materialization.  Runs once per kernel tier (the
    ``kernel_tier`` fixture patches the session default), so the dict
    engine pins the legacy loop, the tape interpreter and — when numba
    is installed — the JIT cores to the same floats.
    """
    app = application_with_load(GRAPHS[gname], 0.8, 2)
    base = RunConfig(schemes=ALL_SCHEMES, n_runs=40, n_processors=2,
                     seed=seed)
    r_dict = evaluate_application(app, base.with_(engine="dict"))
    r_comp = evaluate_application(app, base.with_(engine="compiled"))
    assert r_dict.path_keys == r_comp.path_keys
    assert np.array_equal(r_dict.npm_energy, r_comp.npm_energy)
    for scheme in ALL_SCHEMES:
        assert np.array_equal(r_dict.absolute[scheme],
                              r_comp.absolute[scheme]), scheme
        assert np.array_equal(r_dict.normalized[scheme],
                              r_comp.normalized[scheme]), scheme
        assert np.array_equal(r_dict.speed_changes[scheme],
                              r_comp.speed_changes[scheme]), scheme


@pytest.mark.usefixtures("kernel_tier")
def test_evaluation_equivalence_infeasible_dynamic():
    """At load 1.0 the dynamic plan is infeasible; both engines must
    degrade the dynamic schemes to NPM identically."""
    app = application_with_load(atr_graph(), 1.0, 2)
    base = RunConfig(schemes=ALL_SCHEMES, n_runs=25, n_processors=2,
                     seed=11)
    r_dict = evaluate_application(app, base.with_(engine="dict"))
    r_comp = evaluate_application(app, base.with_(engine="compiled"))
    for scheme in ALL_SCHEMES:
        assert np.array_equal(r_dict.normalized[scheme],
                              r_comp.normalized[scheme]), scheme


@pytest.mark.usefixtures("kernel_tier")
@pytest.mark.parametrize("model", ["transmeta", "xscale"])
def test_evaluation_equivalence_power_models(model):
    """Both discrete power tables agree (different level grids)."""
    app = application_with_load(atr_graph(), 0.6, 4)
    base = RunConfig(schemes=ALL_SCHEMES, n_runs=30, n_processors=4,
                     power_model=model, seed=5)
    r_dict = evaluate_application(app, base.with_(engine="dict"))
    r_comp = evaluate_application(app, base.with_(engine="compiled"))
    for scheme in ALL_SCHEMES:
        assert np.array_equal(r_dict.absolute[scheme],
                              r_comp.absolute[scheme]), scheme


# small graphs keep each fuzz example fast; or_depth still spans
# AND-only through nested multi-OR shapes
def _fuzz_graph(seed, or_depth):
    return random_graph(
        random.Random(seed),
        GraphGenConfig(or_depth=or_depth, max_tasks=4, max_width=2))


@settings(max_examples=20)
@given(seed=st.integers(0, 2**32 - 1),
       or_depth=st.integers(0, 2),
       load=st.floats(0.3, 0.95),
       scheme=st.sampled_from(ALL_SCHEMES))
def test_fuzzed_single_run_equivalence(seed, or_depth, load, scheme):
    """Random graph, random load, any scheme: traces agree exactly."""
    app = application_with_load(_fuzz_graph(seed, or_depth), load, 2)
    power = transmeta_model()
    overhead = NO_OVERHEAD if scheme == "NPM" else PAPER_OVERHEAD
    policy = get_policy(scheme)
    reserve = overhead.per_task_reserve(power) if policy.requires_reserve \
        else 0.0
    plan = build_plan(app, 2, reserve=reserve)
    rng = np.random.default_rng(seed)
    for _ in range(3):
        rl = sample_realization(plan.structure, rng)
        _assert_bit_identical(*_both(plan, scheme, power, overhead, rl))


@settings(max_examples=20)
@given(seed=st.integers(0, 2**32 - 1),
       or_depth=st.integers(0, 2),
       load=st.floats(0.3, 0.95))
def test_fuzzed_evaluation_equivalence(seed, or_depth, load):
    """Batch engines agree on random graphs (dynamic + fixed-speed paths)."""
    app = application_with_load(_fuzz_graph(seed, or_depth), load, 2)
    base = RunConfig(schemes=("GSS", "SPM"), n_runs=8, n_processors=2,
                     seed=seed % 100_000)
    r_dict = evaluate_application(app, base.with_(engine="dict"))
    r_comp = evaluate_application(app, base.with_(engine="compiled"))
    assert r_dict.path_keys == r_comp.path_keys
    assert np.array_equal(r_dict.npm_energy, r_comp.npm_energy)
    for scheme in base.schemes:
        assert np.array_equal(r_dict.absolute[scheme],
                              r_comp.absolute[scheme]), scheme
        assert np.array_equal(r_dict.normalized[scheme],
                              r_comp.normalized[scheme]), scheme
        assert np.array_equal(r_dict.speed_changes[scheme],
                              r_comp.speed_changes[scheme]), scheme


@pytest.mark.usefixtures("kernel_tier")
def test_pooled_compiled_equals_serial_dict():
    """The pool path with the compiled engine equals serial dict runs."""
    app = application_with_load(build_nested_or_graph(), 0.8, 2)
    base = RunConfig(schemes=ALL_SCHEMES, n_runs=30, n_processors=2,
                     seed=13)
    r_dict = evaluate_application(app, base.with_(engine="dict"), n_jobs=1)
    r_comp = evaluate_application(
        app, base.with_(engine="compiled", parallel_min_runs=0,
                        runs_per_chunk=7), n_jobs=2)
    assert r_dict.path_keys == r_comp.path_keys
    for scheme in ALL_SCHEMES:
        assert np.array_equal(r_dict.normalized[scheme],
                              r_comp.normalized[scheme]), scheme
