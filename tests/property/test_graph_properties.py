"""Property tests on the graph model itself."""

import random

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.graph import (
    GraphGenConfig,
    enumerate_paths,
    expected_total_work,
    graph_from_dict,
    graph_to_dict,
    iter_paths,
    path_acet_sum,
    path_wcet_sum,
    random_graph,
    total_probability,
    validate_graph,
)

_SETTINGS = dict(max_examples=40, deadline=None,
                 suppress_health_check=[HealthCheck.too_slow])


@settings(**_SETTINGS)
@given(seed=st.integers(0, 100_000))
def test_random_graphs_are_valid_and_probability_one(seed):
    g = random_graph(random.Random(seed))
    st_ = validate_graph(g)
    assert total_probability(st_) == pytest.approx(1.0)


@settings(**_SETTINGS)
@given(seed=st.integers(0, 100_000))
def test_serialization_round_trip_identity(seed):
    g = random_graph(random.Random(seed))
    d = graph_to_dict(g)
    g2 = graph_from_dict(d)
    assert graph_to_dict(g2) == d


@settings(**_SETTINGS)
@given(seed=st.integers(0, 100_000))
def test_every_path_visits_root_and_each_section_once(seed):
    g = random_graph(random.Random(seed))
    st_ = validate_graph(g)
    for p in iter_paths(st_):
        assert p.sections[0] == st_.root_id
        assert len(set(p.sections)) == len(p.sections)


@settings(**_SETTINGS)
@given(seed=st.integers(0, 100_000))
def test_acet_never_exceeds_wcet_along_paths(seed):
    g = random_graph(random.Random(seed))
    st_ = validate_graph(g)
    for p in iter_paths(st_):
        assert path_acet_sum(st_, p) <= path_wcet_sum(st_, p) + 1e-9


@settings(**_SETTINGS)
@given(seed=st.integers(0, 100_000))
def test_expected_work_is_convex_combination(seed):
    g = random_graph(random.Random(seed))
    st_ = validate_graph(g)
    sums = [path_acet_sum(st_, p) for p in iter_paths(st_)]
    ew = expected_total_work(st_)
    assert min(sums) - 1e-9 <= ew <= max(sums) + 1e-9


@settings(**_SETTINGS)
@given(seed=st.integers(0, 100_000),
       alpha=st.floats(0.1, 1.0))
def test_alpha_bounds_hold(seed, alpha):
    cfg = GraphGenConfig(alpha=alpha, alpha_jitter=0.05)
    g = random_graph(random.Random(seed), cfg)
    for node in g.computation_nodes():
        assert 0 < node.acet <= node.wcet


@settings(**_SETTINGS)
@given(seed=st.integers(0, 100_000))
def test_sections_partition_non_or_nodes(seed):
    g = random_graph(random.Random(seed))
    st_ = validate_graph(g)
    covered = [n for s in st_.sections for n in s.nodes]
    non_or = [n.name for n in g if not n.is_or]
    assert sorted(covered) == sorted(non_or)
    assert len(covered) == len(set(covered))


@settings(**_SETTINGS)
@given(seed=st.integers(0, 100_000))
def test_realized_choice_frequencies(seed):
    """Simulated OR choices converge to the declared probabilities."""
    g = random_graph(random.Random(seed % 50))
    st_ = validate_graph(g)
    from repro.sim import sample_realization
    branching = [o.name for o in g.or_nodes()
                 if len(st_.branches(o.name)) > 1]
    if not branching:
        return
    rng = np.random.default_rng(seed)
    counts = {o: {} for o in branching}
    n = 400
    for _ in range(n):
        rl = sample_realization(st_, rng)
        for o in branching:
            c = rl.choices[o]
            counts[o][c] = counts[o].get(c, 0) + 1
    o = branching[0]
    for target, prob in st_.branches(o):
        freq = counts[o].get(target, 0) / n
        assert freq == pytest.approx(prob, abs=0.12)
