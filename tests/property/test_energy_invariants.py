"""Property tests on energy accounting and speed-selection invariants."""

import random

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import get_policy
from repro.graph import random_graph
from repro.offline import build_plan
from repro.power import (
    NO_OVERHEAD,
    PAPER_OVERHEAD,
    DiscretePowerModel,
    transmeta_model,
    xscale_model,
)
from repro.sim import sample_realization, simulate
from repro.workloads import application_with_load

_SETTINGS = dict(max_examples=25, deadline=None,
                 suppress_health_check=[HealthCheck.too_slow])
_POWER = {"transmeta": transmeta_model(), "xscale": xscale_model()}


def _one_run(graph, scheme, load, power, overhead, seed, m=2):
    app = application_with_load(graph, load, m)
    policy = get_policy(scheme)
    reserve = overhead.per_task_reserve(power) if policy.requires_reserve \
        else 0.0
    plan = build_plan(app, m, reserve=reserve)
    rng = np.random.default_rng(seed)
    rl = sample_realization(plan.structure, rng)
    run = policy.start_run(plan, power, overhead, realization=rl)
    return simulate(plan, run, power, overhead, rl, collect_trace=True)


@settings(**_SETTINGS)
@given(seed=st.integers(0, 10_000),
       scheme=st.sampled_from(["GSS", "SS1", "SS2", "AS"]),
       model=st.sampled_from(["transmeta", "xscale"]))
def test_speeds_are_levels_of_the_model(seed, scheme, model):
    power = _POWER[model]
    g = random_graph(random.Random(seed))
    res = _one_run(g, scheme, 0.6, power, PAPER_OVERHEAD, seed)
    levels = set(power.levels())
    for rec in res.trace:
        assert any(abs(rec.speed - lv) < 1e-9 for lv in levels), rec


@settings(**_SETTINGS)
@given(seed=st.integers(0, 10_000),
       scheme=st.sampled_from(["SPM", "GSS", "SS1", "SS2", "AS",
                               "ORACLE"]))
def test_energy_breakdown_components_nonnegative(seed, scheme):
    g = random_graph(random.Random(seed))
    res = _one_run(g, scheme, 0.5, _POWER["transmeta"], PAPER_OVERHEAD,
                   seed)
    assert res.energy.busy >= 0
    assert res.energy.idle >= 0
    assert res.energy.overhead >= 0
    assert res.total_energy == pytest.approx(
        res.energy.busy + res.energy.idle + res.energy.overhead)


@settings(**_SETTINGS)
@given(seed=st.integers(0, 10_000))
def test_managed_never_worse_than_npm(seed):
    """Paired per-realization: every scheme's energy <= NPM's."""
    g = random_graph(random.Random(seed))
    app = application_with_load(g, 0.6, 2)
    power = _POWER["transmeta"]
    plan_static = build_plan(app, 2, reserve=0.0)
    reserve = PAPER_OVERHEAD.per_task_reserve(power)
    plan_dyn = build_plan(app, 2, reserve=reserve,
                          structure=plan_static.structure)
    rng = np.random.default_rng(seed)
    rl = sample_realization(plan_static.structure, rng)
    npm_run = get_policy("NPM").start_run(plan_static, power, NO_OVERHEAD,
                                          realization=rl)
    base = simulate(plan_static, npm_run, power, NO_OVERHEAD, rl)
    for scheme in ("SPM", "GSS", "SS1", "SS2", "AS"):
        policy = get_policy(scheme)
        plan = plan_dyn if policy.requires_reserve else plan_static
        run = policy.start_run(plan, power, PAPER_OVERHEAD,
                               realization=rl)
        res = simulate(plan, run, power, PAPER_OVERHEAD, rl)
        assert res.total_energy <= base.total_energy * (1 + 1e-9), scheme


@settings(**_SETTINGS)
@given(seed=st.integers(0, 10_000))
def test_speculative_floor_respected(seed):
    """SS1 never runs a task below its speculated level."""
    power = _POWER["xscale"]
    g = random_graph(random.Random(seed))
    app = application_with_load(g, 0.6, 2)
    reserve = PAPER_OVERHEAD.per_task_reserve(power)
    plan = build_plan(app, 2, reserve=reserve)
    policy = get_policy("SS1")
    rng = np.random.default_rng(seed)
    rl = sample_realization(plan.structure, rng)
    run = policy.start_run(plan, power, PAPER_OVERHEAD, realization=rl)
    floor = run.floor(0.0)
    res = simulate(plan, run, power, PAPER_OVERHEAD, rl,
                   collect_trace=True)
    for rec in res.trace:
        assert rec.speed >= floor - 1e-9


@settings(**_SETTINGS)
@given(seed=st.integers(0, 10_000),
       idle=st.floats(0.0, 0.3))
def test_idle_fraction_scales_idle_energy(seed, idle):
    g = random_graph(random.Random(seed))
    app = application_with_load(g, 0.5, 2)
    from repro.power.tables import TRANSMETA_TM5400
    power = DiscretePowerModel(TRANSMETA_TM5400, idle_fraction=idle)
    plan = build_plan(app, 2, reserve=0.0)
    rng = np.random.default_rng(seed)
    rl = sample_realization(plan.structure, rng)
    run = get_policy("NPM").start_run(plan, power, NO_OVERHEAD,
                                      realization=rl)
    res = simulate(plan, run, power, NO_OVERHEAD, rl)
    if idle == 0.0:
        assert res.energy.idle == 0.0
    else:
        assert res.energy.idle > 0


@settings(**_SETTINGS)
@given(seed=st.integers(0, 10_000))
def test_finish_time_monotone_in_speed_floor(seed):
    """A scheme with a floor finishes no later than pure greedy.

    Only true for *continuous* speeds: with discrete levels, dispatching
    a task slightly earlier can snap its required speed to a lower level
    and finish later — hypothesis found that counterexample against an
    earlier version of this test that used the Transmeta table.
    """
    from repro.power import ContinuousPowerModel
    power = ContinuousPowerModel(s_min=0.1)
    g = random_graph(random.Random(seed))
    app = application_with_load(g, 0.6, 2)
    reserve = NO_OVERHEAD.per_task_reserve(power)
    plan = build_plan(app, 2, reserve=reserve)
    rng = np.random.default_rng(seed)
    rl = sample_realization(plan.structure, rng)
    finishes = {}
    for scheme in ("GSS", "SS1"):
        run = get_policy(scheme).start_run(plan, power, NO_OVERHEAD,
                                           realization=rl)
        finishes[scheme] = simulate(plan, run, power, NO_OVERHEAD,
                                    rl).finish_time
    assert finishes["SS1"] <= finishes["GSS"] + 1e-9
