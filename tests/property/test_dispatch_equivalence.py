"""Property: a dispatched sweep equals the serial dict-engine reference.

For random graphs, loads and configurations, routing the sweep through
a real executor fleet (``backend="dispatch"``, two worker processes
over the socket protocol) must produce exactly the series the slowest,
simplest path produces: a serial sweep on the reference dict engine.
Bit-identical energies and speed-change meta — the execution knobs may
differ, the science must not.

The fleet is module-scoped (one pair of executors serves every
example, like a real driver serving many sweeps), which also keeps the
suite inside the ``repro``/``ci`` hypothesis profile budgets.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.experiments import ExecutionContext, RunConfig
from repro.experiments.sweeps import sweep_load
from tests.conftest import (
    build_chain_graph,
    build_fork_graph,
    build_nested_or_graph,
    build_or_graph,
)

GRAPHS = {
    "chain": build_chain_graph,
    "fork": build_fork_graph,
    "or": build_or_graph,
    "nested": build_nested_or_graph,
}

SCHEME_SETS = (("GSS",), ("GSS", "NPM"), ("SPM", "SS1"), ("AS", "SS2"))


@pytest.fixture(scope="module")
def fleet():
    with ExecutionContext(backend="dispatch", executors=2) as ctx:
        yield ctx


@given(
    graph_name=st.sampled_from(sorted(GRAPHS)),
    loads=st.lists(st.sampled_from((0.2, 0.4, 0.5, 0.7, 0.9, 1.0)),
                   min_size=2, max_size=4),
    schemes=st.sampled_from(SCHEME_SETS),
    n_runs=st.integers(min_value=5, max_value=20),
    seed=st.integers(min_value=0, max_value=2 ** 16),
)
@settings(max_examples=8, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_dispatched_sweep_equals_serial_dict_reference(
        fleet, graph_name, loads, schemes, n_runs, seed):
    graph = GRAPHS[graph_name]()
    cfg = RunConfig(schemes=schemes, n_runs=n_runs, seed=seed)
    reference = sweep_load(graph, cfg.with_(engine="dict",
                                            backend="local"), loads)
    dispatched = sweep_load(graph, cfg, loads, context=fleet)
    assert dispatched.points == reference.points
    assert dispatched.meta["speed_changes"] == \
        reference.meta["speed_changes"]
    assert fleet.dispatch_stats()["degraded_points"] == 0
