"""The fused sweep compiler must be bit-identical to per-point paths.

Four layers of the same contract:

* golden exact equality — a fused load sweep (one stacked array program
  over every point) against the per-point compiled engine against the
  serial dict-engine reference, for every scheme including the
  per-run-fallback ones (PS on continuous floors, ORACLE), on multi-OR
  and AND-only graphs;
* sharded exact equality — the same sweep split across seed-aligned
  run-range shards on pool workers and dispatch executors must reduce
  to the very same floats, shard-count edges included, while stateful
  scalar policies refuse to shard with a warning;
* the ``stateless`` declaration — a stateful policy that mutates run
  state *outside* ``on_or_fired`` must get a fresh run object per run
  (the old "does not override on_or_fired" inference silently shared
  it), while a declared-stateless scheme is probed exactly once;
* fusability gates — heterogeneous sweeps (different power models,
  different graph structures) must refuse to fuse rather than guess.
"""

import numpy as np
import pytest

import repro.core.registry as registry
from repro.core import ALL_SCHEMES
from repro.core.base import PolicyRun, SpeedPolicy
from repro.experiments import ExecutionContext, RunConfig, \
    evaluate_application
from repro.experiments.fused import evaluate_points_fused, take_fused_meta
from repro.workloads import application_with_load, atr_graph, figure3_graph
from tests.conftest import build_fork_graph, build_nested_or_graph

# the whole golden-equivalence suite runs once per execution backend
# (local + dispatch): a sweep routed through the executor fleet must be
# byte-for-byte the sweep the fused/compiled/dict references produce
pytestmark = pytest.mark.usefixtures("backend")

LOADS = (0.2, 0.4, 0.5, 0.7, 0.9)


def _apps(graph, cfg, loads=LOADS):
    return [application_with_load(graph, ld, cfg.n_processors)
            for ld in loads]


def _assert_identical(a, b):
    assert np.array_equal(a.npm_energy, b.npm_energy)
    assert a.path_keys == b.path_keys
    assert set(a.normalized) == set(b.normalized)
    for scheme in a.normalized:
        assert np.array_equal(a.normalized[scheme],
                              b.normalized[scheme]), scheme
        assert np.array_equal(a.absolute[scheme],
                              b.absolute[scheme]), scheme
        assert np.array_equal(a.speed_changes[scheme],
                              b.speed_changes[scheme]), scheme


@pytest.mark.usefixtures("kernel_tier")
class TestGoldenEquality:
    """Fused == per-point compiled == dict engine, bit for bit.

    Runs once per kernel tier as well as per backend: the stacked
    array program must hold the same floats whether its sections are
    executed by the legacy entry loop, the tape interpreter or the
    numba cores.
    """

    @pytest.mark.parametrize("graph_fn,label", [
        (atr_graph, "atr"),                    # multi-OR, the paper's app
        (figure3_graph, "fig3"),               # the worked example
        (build_nested_or_graph, "nested"),     # chained ORs
        (build_fork_graph, "fork"),            # AND-only, no ORs at all
    ])
    @pytest.mark.parametrize("model", ["transmeta", "xscale"])
    def test_all_schemes_fused_vs_references(self, graph_fn, label, model):
        cfg = RunConfig(schemes=ALL_SCHEMES, power_model=model,
                        n_runs=40, seed=13)
        apps = _apps(graph_fn(), cfg)
        fused = evaluate_points_fused(apps, [cfg] * len(apps))
        assert fused is not None, f"{label} sweep should fuse"
        assert len(fused) == len(apps)
        for app, res in zip(apps, fused):
            compiled = evaluate_application(app, cfg)
            _assert_identical(res, compiled)
            dict_ref = evaluate_application(app, cfg.with_(engine="dict"))
            _assert_identical(res, dict_ref)

    def test_fused_matches_through_the_sweep_api(self):
        from repro.experiments.sweeps import sweep_load
        cfg = RunConfig(schemes=("SPM", "GSS", "SS2", "AS"),
                        n_runs=30, seed=7)
        graph = atr_graph()
        fused = sweep_load(graph, cfg, LOADS)
        per_point = sweep_load(graph, cfg, LOADS, fused=False)
        assert fused.points == per_point.points
        assert fused.meta["speed_changes"] == \
            per_point.meta["speed_changes"]


class TestShardedEquality:
    """Sharded fused == monolithic fused == dict engine, bit for bit.

    The container's schedulable-core count can be 1, under which an
    *owned* ephemeral context correctly degrades to the monolithic
    pass; every test therefore passes an explicit context —
    ``n_jobs=3`` resolves verbatim, and under the dispatch backend
    param the same constructor resolves to a two-executor fleet — so
    the fan-out genuinely crosses process boundaries on both backends.
    """

    def _ctx(self):
        return ExecutionContext(n_jobs=3)

    @pytest.mark.parametrize("graph_fn,label", [
        (atr_graph, "atr"),                 # multi-OR, the paper's app
        (build_fork_graph, "fork"),         # AND-only, no ORs at all
    ])
    @pytest.mark.parametrize("model", ["transmeta", "xscale"])
    def test_all_schemes_sharded_vs_references(self, graph_fn, label,
                                               model, backend):
        cfg = RunConfig(schemes=ALL_SCHEMES, power_model=model,
                        n_runs=40, seed=13)
        apps = _apps(graph_fn(), cfg)
        reference = evaluate_points_fused(apps, [cfg] * len(apps))
        take_fused_meta()  # drop the monolithic pass's snapshot
        with self._ctx() as ctx:
            sharded = evaluate_points_fused(apps, [cfg] * len(apps),
                                            context=ctx, shards=3)
        assert sharded is not None, f"{label} sweep should fuse"
        meta = take_fused_meta()
        assert meta["shards"] == 3
        assert meta["shard_runs"] == [14, 13, 13]  # 40 % 3 spread
        assert meta["transport"] == \
            ("dispatch" if backend == "dispatch" else "pool")
        for app, res, ref in zip(apps, sharded, reference):
            _assert_identical(res, ref)
            dict_ref = evaluate_application(app, cfg.with_(engine="dict"))
            _assert_identical(res, dict_ref)

    def test_more_shards_than_runs_clamps_and_matches(self, backend):
        cfg = RunConfig(schemes=("GSS", "SPM", "AS"), n_runs=10, seed=5)
        apps = _apps(figure3_graph(), cfg, loads=(0.3, 0.6))
        reference = evaluate_points_fused(apps, [cfg] * len(apps))
        take_fused_meta()
        with self._ctx() as ctx:
            sharded = evaluate_points_fused(apps, [cfg] * len(apps),
                                            context=ctx, shards=40)
        meta = take_fused_meta()
        assert meta["shards"] <= cfg.n_runs  # clamped to the run axis
        assert sum(meta["shard_runs"]) == cfg.n_runs
        for res, ref in zip(sharded, reference):
            _assert_identical(res, ref)

    def test_single_shard_stays_monolithic(self, backend):
        cfg = RunConfig(schemes=("GSS", "SS2"), n_runs=20, seed=9)
        apps = _apps(atr_graph(), cfg, loads=(0.4, 0.8))
        reference = evaluate_points_fused(apps, [cfg] * len(apps))
        take_fused_meta()
        with self._ctx() as ctx:
            sharded = evaluate_points_fused(apps, [cfg] * len(apps),
                                            context=ctx, shards=1)
        meta = take_fused_meta()
        assert meta["shards"] == 1
        assert meta["transport"] == "inline"  # no fan-out at all
        for res, ref in zip(sharded, reference):
            _assert_identical(res, ref)

    def test_stateful_scalar_policy_refuses_to_shard(self, backend,
                                                     monkeypatch):
        monkeypatch.setitem(registry._REGISTRY, "decay", _DecayPolicy)
        cfg = RunConfig(schemes=("GSS", "DECAY"), n_runs=15, seed=3)
        apps = _apps(figure3_graph(), cfg, loads=(0.4, 0.7))
        reference = evaluate_points_fused(apps, [cfg] * len(apps))
        take_fused_meta()
        with self._ctx() as ctx:
            with pytest.warns(RuntimeWarning, match="stateful"):
                sharded = evaluate_points_fused(apps, [cfg] * len(apps),
                                                context=ctx, shards=3)
        meta = take_fused_meta()
        assert meta["shards"] == 1  # refused: ran the monolithic pass
        for res, ref in zip(sharded, reference):
            _assert_identical(res, ref)

    def test_config_shards_route_through_the_sweep_api(self, backend):
        from repro.experiments.sweeps import sweep_load
        cfg = RunConfig(schemes=("SPM", "GSS", "AS"), n_runs=30, seed=7)
        graph = atr_graph()
        reference = sweep_load(graph, cfg, LOADS)
        with self._ctx() as ctx:
            sharded = sweep_load(graph, cfg.with_(shards=3), LOADS,
                                 context=ctx)
        assert sharded.points == reference.points
        assert sharded.meta["speed_changes"] == \
            reference.meta["speed_changes"]
        fused_meta = sharded.meta["fused"]
        assert fused_meta["shards"] == 3
        assert fused_meta["transport"] == \
            ("dispatch" if backend == "dispatch" else "pool")
        # without a config request the reference follows the session
        # default (REPRO_SHARDS), which is "monolithic" when unset
        from repro.experiments.fused import default_shards
        expected_ref = default_shards()
        if expected_ref is None:
            assert "shards" not in reference.meta.get("fused", {}) or \
                reference.meta["fused"]["shards"] == 1


class _CountingGreedy(SpeedPolicy):
    """Stateless dynamic scheme that counts ``start_run`` calls."""

    name = "CGREEDY"
    requires_reserve = True

    def __init__(self):
        self.starts = 0

    def start_run(self, plan, power, overhead, realization=None):
        self.starts += 1
        return _CountingGreedyRun()


class _CountingGreedyRun(PolicyRun):
    name = "CGREEDY"
    floor_const = None  # opaque floor: forces the scalar kernel path
    stateless = True    # ...but nothing is ever mutated

    def floor(self, t):
        return 0.0


class _DecayPolicy(SpeedPolicy):
    """Stateful scheme whose state lives OUTSIDE ``on_or_fired``.

    Each ``floor`` call consumes the run's speed budget: the first task
    gets a full-speed floor, later ones decay toward pure greedy.  The
    old sharing inference ("does not override on_or_fired") would have
    reused one run for the whole batch, leaking the decayed floor of
    run *i* into run *i+1*.
    """

    name = "DECAY"
    requires_reserve = True

    def __init__(self):
        self.starts = 0

    def start_run(self, plan, power, overhead, realization=None):
        self.starts += 1
        return _DecayRun(power)


class _DecayRun(PolicyRun):
    name = "DECAY"
    floor_const = None  # the floor varies call to call: scalar path

    def __init__(self, power):
        self._level = power.s_max

    def floor(self, t):
        level = self._level
        self._level = self._level * 0.5  # mutation!
        return level


class TestStatelessDeclaration:
    @pytest.fixture
    def app(self):
        return application_with_load(figure3_graph(), 0.5, 2)

    def test_stateful_policy_gets_fresh_run_per_run(self, app,
                                                    monkeypatch):
        policy = _DecayPolicy()
        monkeypatch.setitem(registry._REGISTRY, "decay", lambda: policy)
        cfg = RunConfig(schemes=("DECAY",), n_runs=25, seed=3)
        compiled = evaluate_application(app, cfg)
        # one probe + one per run: never shared
        assert policy.starts == cfg.n_runs + 1
        # and the results equal the dict engine, which always starts a
        # fresh run — shared state would corrupt every run after the first
        dict_policy = _DecayPolicy()
        monkeypatch.setitem(registry._REGISTRY, "decay",
                            lambda: dict_policy)
        dict_ref = evaluate_application(app, cfg.with_(engine="dict"))
        assert np.array_equal(compiled.absolute["DECAY"],
                              dict_ref.absolute["DECAY"])
        assert np.array_equal(compiled.speed_changes["DECAY"],
                              dict_ref.speed_changes["DECAY"])

    def test_stateful_runs_really_differ_when_shared(self, app):
        # the hazard is real: a shared _DecayRun yields different floors
        from repro.power import transmeta_model
        power = transmeta_model()
        run = _DecayRun(power)
        first = [run.floor(0.0) for _ in range(3)]
        fresh = _DecayRun(power)
        assert [fresh.floor(0.0)] + first[:2] != first  # state leaked

    def test_declared_stateless_run_is_probed_once(self, app,
                                                   monkeypatch):
        policy = _CountingGreedy()
        monkeypatch.setitem(registry._REGISTRY, "cgreedy",
                            lambda: policy)
        cfg = RunConfig(schemes=("CGREEDY",), n_runs=25, seed=3)
        compiled = evaluate_application(app, cfg)
        assert policy.starts == 1  # the probe serves every run
        # a zero floor is exactly GSS: pin against the real scheme
        gss = evaluate_application(app, cfg.with_(schemes=("GSS",)))
        assert np.array_equal(compiled.absolute["CGREEDY"],
                              gss.absolute["GSS"])


class TestFusabilityGates:
    def test_mixed_power_models_refuse_to_fuse(self):
        cfg_a = RunConfig(schemes=("GSS",), n_runs=10, seed=1,
                          power_model="transmeta")
        cfg_b = cfg_a.with_(power_model="xscale")
        apps = _apps(atr_graph(), cfg_a, loads=(0.4, 0.6))
        assert evaluate_points_fused(apps, [cfg_a, cfg_b]) is None

    def test_mixed_structures_refuse_to_fuse(self):
        cfg = RunConfig(schemes=("GSS",), n_runs=10, seed=1)
        apps = [application_with_load(atr_graph(), 0.5, 2),
                application_with_load(figure3_graph(), 0.5, 2)]
        assert evaluate_points_fused(apps, [cfg, cfg]) is None

    def test_dict_engine_refuses_to_fuse(self):
        cfg = RunConfig(schemes=("GSS",), n_runs=10, seed=1,
                        engine="dict")
        apps = _apps(atr_graph(), cfg, loads=(0.4, 0.6))
        assert evaluate_points_fused(apps, [cfg, cfg]) is None

    def test_empty_sweep_fuses_to_nothing(self):
        assert evaluate_points_fused([], []) == []
