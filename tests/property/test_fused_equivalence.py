"""The fused sweep compiler must be bit-identical to per-point paths.

Three layers of the same contract:

* golden exact equality — a fused load sweep (one stacked array program
  over every point) against the per-point compiled engine against the
  serial dict-engine reference, for every scheme including the
  per-run-fallback ones (PS on continuous floors, ORACLE), on multi-OR
  and AND-only graphs;
* the ``stateless`` declaration — a stateful policy that mutates run
  state *outside* ``on_or_fired`` must get a fresh run object per run
  (the old "does not override on_or_fired" inference silently shared
  it), while a declared-stateless scheme is probed exactly once;
* fusability gates — heterogeneous sweeps (different power models,
  different graph structures) must refuse to fuse rather than guess.
"""

import numpy as np
import pytest

import repro.core.registry as registry
from repro.core import ALL_SCHEMES
from repro.core.base import PolicyRun, SpeedPolicy
from repro.experiments import RunConfig, evaluate_application
from repro.experiments.fused import evaluate_points_fused
from repro.workloads import application_with_load, atr_graph, figure3_graph
from tests.conftest import build_fork_graph, build_nested_or_graph

# the whole golden-equivalence suite runs once per execution backend
# (local + dispatch): a sweep routed through the executor fleet must be
# byte-for-byte the sweep the fused/compiled/dict references produce
pytestmark = pytest.mark.usefixtures("backend")

LOADS = (0.2, 0.4, 0.5, 0.7, 0.9)


def _apps(graph, cfg, loads=LOADS):
    return [application_with_load(graph, ld, cfg.n_processors)
            for ld in loads]


def _assert_identical(a, b):
    assert np.array_equal(a.npm_energy, b.npm_energy)
    assert a.path_keys == b.path_keys
    assert set(a.normalized) == set(b.normalized)
    for scheme in a.normalized:
        assert np.array_equal(a.normalized[scheme],
                              b.normalized[scheme]), scheme
        assert np.array_equal(a.absolute[scheme],
                              b.absolute[scheme]), scheme
        assert np.array_equal(a.speed_changes[scheme],
                              b.speed_changes[scheme]), scheme


@pytest.mark.usefixtures("kernel_tier")
class TestGoldenEquality:
    """Fused == per-point compiled == dict engine, bit for bit.

    Runs once per kernel tier as well as per backend: the stacked
    array program must hold the same floats whether its sections are
    executed by the legacy entry loop, the tape interpreter or the
    numba cores.
    """

    @pytest.mark.parametrize("graph_fn,label", [
        (atr_graph, "atr"),                    # multi-OR, the paper's app
        (figure3_graph, "fig3"),               # the worked example
        (build_nested_or_graph, "nested"),     # chained ORs
        (build_fork_graph, "fork"),            # AND-only, no ORs at all
    ])
    @pytest.mark.parametrize("model", ["transmeta", "xscale"])
    def test_all_schemes_fused_vs_references(self, graph_fn, label, model):
        cfg = RunConfig(schemes=ALL_SCHEMES, power_model=model,
                        n_runs=40, seed=13)
        apps = _apps(graph_fn(), cfg)
        fused = evaluate_points_fused(apps, [cfg] * len(apps))
        assert fused is not None, f"{label} sweep should fuse"
        assert len(fused) == len(apps)
        for app, res in zip(apps, fused):
            compiled = evaluate_application(app, cfg)
            _assert_identical(res, compiled)
            dict_ref = evaluate_application(app, cfg.with_(engine="dict"))
            _assert_identical(res, dict_ref)

    def test_fused_matches_through_the_sweep_api(self):
        from repro.experiments.sweeps import sweep_load
        cfg = RunConfig(schemes=("SPM", "GSS", "SS2", "AS"),
                        n_runs=30, seed=7)
        graph = atr_graph()
        fused = sweep_load(graph, cfg, LOADS)
        per_point = sweep_load(graph, cfg, LOADS, fused=False)
        assert fused.points == per_point.points
        assert fused.meta["speed_changes"] == \
            per_point.meta["speed_changes"]


class _CountingGreedy(SpeedPolicy):
    """Stateless dynamic scheme that counts ``start_run`` calls."""

    name = "CGREEDY"
    requires_reserve = True

    def __init__(self):
        self.starts = 0

    def start_run(self, plan, power, overhead, realization=None):
        self.starts += 1
        return _CountingGreedyRun()


class _CountingGreedyRun(PolicyRun):
    name = "CGREEDY"
    floor_const = None  # opaque floor: forces the scalar kernel path
    stateless = True    # ...but nothing is ever mutated

    def floor(self, t):
        return 0.0


class _DecayPolicy(SpeedPolicy):
    """Stateful scheme whose state lives OUTSIDE ``on_or_fired``.

    Each ``floor`` call consumes the run's speed budget: the first task
    gets a full-speed floor, later ones decay toward pure greedy.  The
    old sharing inference ("does not override on_or_fired") would have
    reused one run for the whole batch, leaking the decayed floor of
    run *i* into run *i+1*.
    """

    name = "DECAY"
    requires_reserve = True

    def __init__(self):
        self.starts = 0

    def start_run(self, plan, power, overhead, realization=None):
        self.starts += 1
        return _DecayRun(power)


class _DecayRun(PolicyRun):
    name = "DECAY"
    floor_const = None  # the floor varies call to call: scalar path

    def __init__(self, power):
        self._level = power.s_max

    def floor(self, t):
        level = self._level
        self._level = self._level * 0.5  # mutation!
        return level


class TestStatelessDeclaration:
    @pytest.fixture
    def app(self):
        return application_with_load(figure3_graph(), 0.5, 2)

    def test_stateful_policy_gets_fresh_run_per_run(self, app,
                                                    monkeypatch):
        policy = _DecayPolicy()
        monkeypatch.setitem(registry._REGISTRY, "decay", lambda: policy)
        cfg = RunConfig(schemes=("DECAY",), n_runs=25, seed=3)
        compiled = evaluate_application(app, cfg)
        # one probe + one per run: never shared
        assert policy.starts == cfg.n_runs + 1
        # and the results equal the dict engine, which always starts a
        # fresh run — shared state would corrupt every run after the first
        dict_policy = _DecayPolicy()
        monkeypatch.setitem(registry._REGISTRY, "decay",
                            lambda: dict_policy)
        dict_ref = evaluate_application(app, cfg.with_(engine="dict"))
        assert np.array_equal(compiled.absolute["DECAY"],
                              dict_ref.absolute["DECAY"])
        assert np.array_equal(compiled.speed_changes["DECAY"],
                              dict_ref.speed_changes["DECAY"])

    def test_stateful_runs_really_differ_when_shared(self, app):
        # the hazard is real: a shared _DecayRun yields different floors
        from repro.power import transmeta_model
        power = transmeta_model()
        run = _DecayRun(power)
        first = [run.floor(0.0) for _ in range(3)]
        fresh = _DecayRun(power)
        assert [fresh.floor(0.0)] + first[:2] != first  # state leaked

    def test_declared_stateless_run_is_probed_once(self, app,
                                                   monkeypatch):
        policy = _CountingGreedy()
        monkeypatch.setitem(registry._REGISTRY, "cgreedy",
                            lambda: policy)
        cfg = RunConfig(schemes=("CGREEDY",), n_runs=25, seed=3)
        compiled = evaluate_application(app, cfg)
        assert policy.starts == 1  # the probe serves every run
        # a zero floor is exactly GSS: pin against the real scheme
        gss = evaluate_application(app, cfg.with_(schemes=("GSS",)))
        assert np.array_equal(compiled.absolute["CGREEDY"],
                              gss.absolute["GSS"])


class TestFusabilityGates:
    def test_mixed_power_models_refuse_to_fuse(self):
        cfg_a = RunConfig(schemes=("GSS",), n_runs=10, seed=1,
                          power_model="transmeta")
        cfg_b = cfg_a.with_(power_model="xscale")
        apps = _apps(atr_graph(), cfg_a, loads=(0.4, 0.6))
        assert evaluate_points_fused(apps, [cfg_a, cfg_b]) is None

    def test_mixed_structures_refuse_to_fuse(self):
        cfg = RunConfig(schemes=("GSS",), n_runs=10, seed=1)
        apps = [application_with_load(atr_graph(), 0.5, 2),
                application_with_load(figure3_graph(), 0.5, 2)]
        assert evaluate_points_fused(apps, [cfg, cfg]) is None

    def test_dict_engine_refuses_to_fuse(self):
        cfg = RunConfig(schemes=("GSS",), n_runs=10, seed=1,
                        engine="dict")
        apps = _apps(atr_graph(), cfg, loads=(0.4, 0.6))
        assert evaluate_points_fused(apps, [cfg, cfg]) is None

    def test_empty_sweep_fuses_to_nothing(self):
        assert evaluate_points_fused([], []) == []
