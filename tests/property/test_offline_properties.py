"""Property tests on offline-plan invariants (random graphs)."""

import random

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.graph import random_graph, GraphGenConfig
from repro.offline import build_plan
from repro.workloads import application_with_load

_SETTINGS = dict(max_examples=40, deadline=None,
                 suppress_health_check=[HealthCheck.too_slow])


def _plan(seed, load=0.7, m=2, reserve=0.0, heuristic="ltf"):
    graph = random_graph(random.Random(seed))
    app = application_with_load(graph, load, m)
    return build_plan(app, m, reserve=reserve, heuristic=heuristic)


@settings(**_SETTINGS)
@given(seed=st.integers(0, 100_000), m=st.sampled_from([1, 2, 4]))
def test_lst_never_before_canonical_start(seed, m):
    plan = _plan(seed, m=m)
    for sp in plan.sections.values():
        for name, lst in sp.lst.items():
            assert lst >= sp.schedule.tasks[name].start - 1e-9


@settings(**_SETTINGS)
@given(seed=st.integers(0, 100_000))
def test_finish_bounds_within_deadline(seed):
    plan = _plan(seed)
    for sp in plan.sections.values():
        for bound in sp.finish_bound.values():
            assert bound <= plan.deadline + 1e-9


@settings(**_SETTINGS)
@given(seed=st.integers(0, 100_000))
def test_average_below_worst_everywhere(seed):
    plan = _plan(seed)
    assert plan.t_avg <= plan.t_worst + 1e-9
    for sp in plan.sections.values():
        assert sp.length_ac <= sp.length_wc + 1e-9
        assert sp.avg_after <= sp.worst_after + 1e-9
    for stats in plan.branch_stats.values():
        for ps in stats.values():
            assert ps.average <= ps.worst + 1e-9


@settings(**_SETTINGS)
@given(seed=st.integers(0, 100_000),
       reserve=st.floats(0.0, 0.5))
def test_reserve_monotone_in_t_worst(seed, reserve):
    plain = _plan(seed)
    try:
        inflated = _plan(seed, reserve=reserve)
    except Exception:
        return  # reserve may make the plan infeasible at this load
    assert inflated.t_worst >= plain.t_worst - 1e-9


@settings(**_SETTINGS)
@given(seed=st.integers(0, 100_000))
def test_worst_after_is_max_over_branches(seed):
    plan = _plan(seed)
    structure = plan.structure
    for sid, sp in plan.sections.items():
        exit_or = structure.section(sid).exit_or
        if exit_or is None or not structure.branches(exit_or):
            assert sp.worst_after == 0.0
            continue
        expected = max(plan.branch_stats[exit_or][t].worst
                       for t, _p in structure.branches(exit_or))
        assert sp.worst_after == pytest.approx(expected)


@settings(**_SETTINGS)
@given(seed=st.integers(0, 100_000))
def test_avg_after_is_probability_weighted(seed):
    plan = _plan(seed)
    structure = plan.structure
    for sid, sp in plan.sections.items():
        exit_or = structure.section(sid).exit_or
        if exit_or is None or not structure.branches(exit_or):
            continue
        expected = sum(p * plan.branch_stats[exit_or][t].average
                       for t, p in structure.branches(exit_or))
        assert sp.avg_after == pytest.approx(expected)


@settings(**_SETTINGS)
@given(seed=st.integers(0, 100_000),
       heuristic=st.sampled_from(["ltf", "stf", "fifo", "cpf"]))
def test_dispatch_order_topological_any_heuristic(seed, heuristic):
    plan = _plan(seed, heuristic=heuristic)
    graph = plan.app.graph
    for sp in plan.sections.values():
        pos = {n: i for i, n in enumerate(sp.dispatch_order)}
        for name in sp.dispatch_order:
            for p in sp.preds_within[name]:
                assert pos[p] < pos[name]


@settings(**_SETTINGS)
@given(seed=st.integers(0, 100_000))
def test_canonical_length_never_exceeds_serial(seed):
    """Any list schedule keeps >= 1 processor busy, so its makespan is
    bounded by the serial (m=1) length.  Strict monotonicity in m does
    NOT hold in general (Graham's scheduling anomalies), so that is
    deliberately not asserted.
    """
    graph = random_graph(random.Random(seed))
    from repro.workloads import worst_case_length
    t1 = worst_case_length(graph, 1)
    for m in (2, 8):
        assert worst_case_length(graph, m) <= t1 + 1e-9