"""Property tests for Theorem 1: deadlines are always met.

For *any* valid AND/OR application whose canonical schedule is feasible,
every scheme must finish by the deadline on every realization — this is
the paper's central correctness claim, so we attack it with random
graphs, random realizations, random loads, both power models and
processor counts.
"""

import random

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import ALL_SCHEMES, get_policy
from repro.graph import GraphGenConfig, random_graph
from repro.offline import build_plan
from repro.power import NO_OVERHEAD, PAPER_OVERHEAD, transmeta_model, xscale_model
from repro.sim import sample_realization, simulate, worst_case_realization
from repro.workloads import application_with_load

_POWER = {"transmeta": transmeta_model(), "xscale": xscale_model()}


def _check_all_schemes(graph, load, m, power, overhead, seed, n_rl=3):
    app = application_with_load(graph, load, m)
    plan_static = build_plan(app, m, reserve=0.0)
    reserve = overhead.per_task_reserve(power)
    try:
        plan_dyn = build_plan(app, m, reserve=reserve,
                              structure=plan_static.structure)
    except Exception:
        plan_dyn = None  # DVS disabled at this load; nothing to check
    rng = np.random.default_rng(seed)
    realizations = [sample_realization(plan_static.structure, rng)
                    for _ in range(n_rl)]
    realizations.append(worst_case_realization(plan_static.structure,
                                               plan_static))
    for rl in realizations:
        for name in ALL_SCHEMES:
            policy = get_policy(name)
            if policy.requires_reserve:
                if plan_dyn is None:
                    continue
                plan, ov = plan_dyn, overhead
            else:
                plan, ov = plan_static, (
                    NO_OVERHEAD if name == "NPM" else overhead)
            run = policy.start_run(plan, power, ov, realization=rl)
            res = simulate(plan, run, power, ov, rl)  # raises on miss
            assert res.met_deadline


@settings(max_examples=25, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(seed=st.integers(0, 10_000),
       load=st.sampled_from([0.2, 0.5, 0.8, 0.95, 1.0]),
       m=st.sampled_from([1, 2, 4]),
       model=st.sampled_from(["transmeta", "xscale"]))
def test_random_graphs_always_meet_deadline(seed, load, m, model):
    graph = random_graph(random.Random(seed))
    _check_all_schemes(graph, load, m, _POWER[model], PAPER_OVERHEAD,
                       seed)


@settings(max_examples=20, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(seed=st.integers(0, 10_000),
       alpha=st.floats(0.1, 1.0))
def test_low_alpha_graphs_meet_deadline(seed, alpha):
    cfg = GraphGenConfig(alpha=alpha, alpha_jitter=0.0, or_depth=3)
    graph = random_graph(random.Random(seed), cfg)
    _check_all_schemes(graph, 0.7, 2, _POWER["xscale"], PAPER_OVERHEAD,
                       seed, n_rl=2)


@settings(max_examples=15, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(seed=st.integers(0, 10_000))
def test_zero_overhead_exact_guarantee(seed):
    """Without overheads the guarantee is exact even at load 1.0."""
    graph = random_graph(random.Random(seed))
    _check_all_schemes(graph, 1.0, 2, _POWER["transmeta"], NO_OVERHEAD,
                       seed)


@settings(max_examples=10, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(seed=st.integers(0, 10_000),
       big_overhead=st.floats(0.01, 0.5))
def test_large_overheads_never_break_deadline(seed, big_overhead):
    """Even absurd switch costs may only cost energy, not correctness."""
    from repro.power import OverheadModel
    graph = random_graph(random.Random(seed))
    ov = OverheadModel(comp_cycles=3000, adjust_time=big_overhead)
    _check_all_schemes(graph, 0.6, 2, _POWER["transmeta"], ov, seed,
                       n_rl=2)
