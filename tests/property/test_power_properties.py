"""Property tests on power-model arithmetic."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.power import (
    ContinuousPowerModel,
    transmeta_model,
    xscale_model,
)

_MODELS = {"transmeta": transmeta_model(), "xscale": xscale_model()}


@settings(max_examples=200, deadline=None)
@given(speed=st.floats(0.0, 1.0),
       model=st.sampled_from(["transmeta", "xscale"]))
def test_snap_up_is_a_level_at_least_speed(speed, model):
    m = _MODELS[model]
    s = m.snap_up(speed)
    assert s in m.levels()
    assert s >= min(speed, m.s_max) - 1e-12
    assert m.s_min <= s <= m.s_max


@settings(max_examples=200, deadline=None)
@given(speed=st.floats(0.0, 1.0),
       model=st.sampled_from(["transmeta", "xscale"]))
def test_snap_up_is_idempotent(speed, model):
    m = _MODELS[model]
    s = m.snap_up(speed)
    assert m.snap_up(s) == s


@settings(max_examples=200, deadline=None)
@given(a=st.floats(0.0, 1.0), b=st.floats(0.0, 1.0),
       model=st.sampled_from(["transmeta", "xscale"]))
def test_snap_up_monotone(a, b, model):
    m = _MODELS[model]
    lo, hi = min(a, b), max(a, b)
    assert m.snap_up(lo) <= m.snap_up(hi)


@settings(max_examples=200, deadline=None)
@given(speed=st.floats(0.05, 1.0),
       model=st.sampled_from(["transmeta", "xscale"]))
def test_bracket_encloses_speed(speed, model):
    m = _MODELS[model]
    lo, hi = m.bracket(speed)
    assert lo in m.levels() and hi in m.levels()
    assert hi == m.snap_up(speed)
    if speed >= m.s_min:
        assert lo <= speed + 1e-12


@settings(max_examples=200, deadline=None)
@given(model=st.sampled_from(["transmeta", "xscale"]),
       i=st.integers(0, 20))
def test_power_monotone_in_level(model, i):
    m = _MODELS[model]
    levels = m.levels()
    i = i % (len(levels) - 1)
    assert m.power(levels[i]) < m.power(levels[i + 1])


@settings(max_examples=200, deadline=None)
@given(work=st.floats(0.001, 1000.0),
       model=st.sampled_from(["transmeta", "xscale"]),
       i=st.integers(0, 20))
def test_task_energy_monotone_in_speed(work, model, i):
    """Running fixed work slower never costs more energy (discrete)."""
    m = _MODELS[model]
    levels = m.levels()
    i = i % (len(levels) - 1)
    assert m.task_energy(levels[i], work) <= \
        m.task_energy(levels[i + 1], work) + 1e-12


@settings(max_examples=200, deadline=None)
@given(speed=st.floats(0.01, 1.0), work=st.floats(0.0, 100.0))
def test_continuous_energy_quadratic(speed, work):
    m = ContinuousPowerModel()
    expected = speed ** 2 * work
    assert m.task_energy(speed, work) == pytest.approx(expected)


@settings(max_examples=100, deadline=None)
@given(speed=st.floats(0.01, 1.0))
def test_slower_beats_idle_plus_fast_for_fixed_work(speed):
    """The DVS premise: stretching work beats racing-to-idle.

    For any (continuous-model) speed s < 1: running W work at s costs
    s^2*W busy energy; racing at 1.0 costs W + idle for the remaining
    (W/s - W) wall time.  With idle at 5%, slowing down wins whenever
    s^2 < 1 - 0.05*(1/s - 1) ... we just check the total inequality.
    """
    m = ContinuousPowerModel()
    work = 10.0
    window = work / speed
    slow = m.task_energy(speed, work) + 0  # busy for the whole window
    fast = m.task_energy(1.0, work) + m.idle_energy(window - work)
    if speed >= 0.3:  # below that, idle power dominates the comparison
        assert slow <= fast + 1e-9
