"""Streaming-path invariants of the online scenario mode.

Four families, per the issue's property sweep:

* **Admission soundness** — every admitted arrival's remaining window
  really passes the offline feasibility check: ``build_plan`` on an
  application whose deadline *is* that window never raises
  :class:`~repro.errors.InfeasibleError`, and every rejection is
  justified (the window no longer fits the canonical worst case).
* **Monotonicity** — energy only accumulates: per-scheme cumulative
  stream energy is non-decreasing job over job, and extending the
  horizon (same seed) only appends work, never rewrites the prefix.
* **Determinism** — one seed fixes the whole stream: repeated
  simulations are bit-identical (arrivals, ledger, energies, finish
  instants), on every backend of the session matrix.
* **Degenerate equality** — a single arrival at t=0 *is* the offline
  evaluator: every scheme's energies match
  ``evaluate_application(app, config.with_(n_runs=1))`` exactly, for
  both paper power models; more generally a stream of ``n`` admitted
  jobs replays the offline ``n_runs = n`` batch bit for bit.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import ALL_SCHEMES
from repro.experiments import (
    OnlineConfig,
    RunConfig,
    evaluate_application,
    simulate_online,
)
from repro.offline.plan import build_plan
from repro.workloads import application_with_load, figure3_graph

pytestmark = pytest.mark.usefixtures("backend")

# the backend fixture (function-scoped, applied file-wide) is stable
# across a test's generated examples, so suppressing the fixture check
# is sound here
_SETTINGS = dict(max_examples=15, deadline=None,
                 suppress_health_check=[HealthCheck.too_slow,
                                        HealthCheck.function_scoped_fixture])

#: a fast cross-section: the baseline, the static optimum, one DVS
_SCHEMES = ("NPM", "SPM", "GSS")

seeds = st.integers(0, 10_000)
rates = st.floats(0.2, 2.0, allow_nan=False, allow_infinity=False)
loads = st.sampled_from((0.5, 0.7, 0.9))


def _stream(seed, rate, load, schemes=_SCHEMES, n=25, **cfg_kwargs):
    graph = figure3_graph()
    cfg = RunConfig(schemes=schemes, n_processors=2, seed=seed,
                    **cfg_kwargs)
    online = OnlineConfig(rate=rate, load=load, target_arrivals=n)
    return graph, cfg, simulate_online(graph, cfg, online)


@settings(**_SETTINGS)
@given(seed=seeds, rate=rates, load=loads)
def test_admission_is_sound(seed, rate, load):
    """Admitted windows pass build_plan; rejected windows cannot."""
    graph, cfg, res = _stream(seed, rate, load, n=8)
    for j in range(res.n_arrivals):
        window = float(res.windows[j])
        if res.admitted[j]:
            app = application_with_load(graph, load, cfg.n_processors)
            # must not raise InfeasibleError: the admission predicate
            # is exactly the offline feasibility check on this window
            build_plan(app.with_deadline(window), cfg.n_processors,
                       use_cache=False)
        else:
            assert res.t_worst > window, \
                f"arrival {j} rejected with a feasible window {window}"


@settings(**_SETTINGS)
@given(seed=seeds, rate=rates, load=loads)
def test_stream_energy_is_monotone(seed, rate, load):
    """Energy only accumulates: each admitted job adds a positive term."""
    _, _, res = _stream(seed, rate, load)
    for st_ in res.per_scheme.values():
        assert np.all(st_.job_energy > 0)
        cumulative = np.cumsum(st_.job_energy)
        assert np.all(np.diff(cumulative) > 0)
        # and per-job finish instants advance with the FIFO ledger
        assert np.all(np.diff(st_.job_finish) > 0)


@settings(**_SETTINGS)
@given(seed=seeds, load=loads)
def test_longer_horizon_only_appends(seed, load):
    """Extending the stream replays the same ledger prefix, plus more.

    Only the *ledger* is prefix-stable: realizations are drawn as one
    batch of ``n_admitted`` runs (the offline ``n_runs`` identity), so
    per-job energies are a function of the final admitted count, not
    of any shorter stream's.
    """
    graph = figure3_graph()
    cfg = RunConfig(schemes=_SCHEMES, n_processors=2, seed=seed)
    short = simulate_online(graph, cfg,
                            OnlineConfig(rate=1.0, load=load, horizon=10.0))
    long = simulate_online(graph, cfg,
                           OnlineConfig(rate=1.0, load=load, horizon=25.0))
    k = short.n_arrivals
    assert long.n_arrivals >= k
    assert np.array_equal(short.arrivals, long.arrivals[:k])
    assert np.array_equal(short.admitted, long.admitted[:k])
    assert np.array_equal(short.windows, long.windows[:k])
    assert long.n_admitted >= short.n_admitted


@settings(**_SETTINGS)
@given(seed=seeds, rate=rates, load=loads,
       arrival=st.sampled_from(("poisson", "bursty")))
def test_identical_seeds_are_bit_identical(seed, rate, load, arrival):
    graph = figure3_graph()
    cfg = RunConfig(schemes=_SCHEMES, n_processors=2, seed=seed)
    online = OnlineConfig(arrival=arrival, rate=rate, load=load,
                          target_arrivals=25)
    a = simulate_online(graph, cfg, online)
    b = simulate_online(graph, cfg, online)
    assert np.array_equal(a.arrivals, b.arrivals)
    assert np.array_equal(a.admitted, b.admitted)
    assert np.array_equal(a.windows, b.windows)
    assert np.array_equal(a.npm_energy, b.npm_energy)
    assert a.path_keys == b.path_keys
    assert a.admit_retries == b.admit_retries == 0
    for name, st_ in a.per_scheme.items():
        other = b.per_scheme[name]
        for attr in ("job_energy", "job_normalized", "job_finish",
                     "job_miss", "job_changes"):
            assert np.array_equal(getattr(st_, attr),
                                  getattr(other, attr)), (name, attr)


@settings(**_SETTINGS)
@given(seed=seeds, load=loads)
def test_zero_rate_stream_has_zero_energy_and_misses(seed, load):
    _, _, res = _stream(seed, 0.0, load, n=None, schemes=_SCHEMES)
    assert res.n_arrivals == 0
    for st_ in res.per_scheme.values():
        assert st_.energy == 0.0
        assert st_.n_missed == 0


class TestOfflineEquivalence:
    """The degenerate stream is the offline evaluator, bit for bit."""

    @pytest.mark.usefixtures("kernel_tier")
    @pytest.mark.parametrize("model", ["transmeta", "xscale"])
    def test_single_arrival_matches_evaluate_application(self, model):
        graph = figure3_graph()
        cfg = RunConfig(schemes=ALL_SCHEMES, power_model=model,
                        n_processors=2, seed=13)
        online = OnlineConfig(arrival="trace", trace=(0.0,),
                              horizon=5.0, load=0.7)
        res = simulate_online(graph, cfg, online)
        assert res.n_arrivals == res.n_admitted == 1

        app = application_with_load(graph, 0.7, cfg.n_processors)
        ref = evaluate_application(app, cfg.with_(n_runs=1))
        assert np.array_equal(res.npm_energy, ref.npm_energy)
        assert res.path_keys == ref.path_keys
        for name in ref.absolute:
            st_ = res.per_scheme[name]
            assert np.array_equal(st_.job_energy, ref.absolute[name]), name
            assert np.array_equal(st_.job_normalized,
                                  ref.normalized[name]), name
            assert np.array_equal(st_.job_changes,
                                  ref.speed_changes[name]), name

    @settings(**dict(_SETTINGS, max_examples=5))
    @given(seed=seeds, rate=rates)
    def test_admitted_batch_matches_offline_n_runs(self, seed, rate):
        """n admitted jobs see exactly the offline n_runs=n batch."""
        graph, cfg, res = _stream(seed, rate, 0.7, schemes=ALL_SCHEMES,
                                  n=12)
        if res.n_admitted == 0:  # an all-rejected draw proves nothing
            return
        app = application_with_load(graph, 0.7, cfg.n_processors)
        ref = evaluate_application(app, cfg.with_(n_runs=res.n_admitted))
        assert np.array_equal(res.npm_energy, ref.npm_energy)
        assert res.path_keys == ref.path_keys
        for name in ref.absolute:
            assert np.array_equal(res.per_scheme[name].job_energy,
                                  ref.absolute[name]), name

    def test_dict_engine_replays_the_same_stream(self):
        graph = figure3_graph()
        cfg = RunConfig(schemes=ALL_SCHEMES, n_processors=2, seed=21)
        online = OnlineConfig(rate=1.0, load=0.7, target_arrivals=15)
        a = simulate_online(graph, cfg, online)
        b = simulate_online(graph, cfg.with_(engine="dict"), online)
        assert np.array_equal(a.admitted, b.admitted)
        assert a.path_keys == b.path_keys
        for name, st_ in a.per_scheme.items():
            other = b.per_scheme[name]
            assert np.array_equal(st_.job_energy, other.job_energy), name
            assert np.array_equal(st_.job_finish, other.job_finish), name
            assert np.array_equal(st_.job_miss, other.job_miss), name
