"""Property tests: every scheme's trace passes independent verification.

This pits the engine against the :mod:`repro.analysis.verify` oracle
(precedence, mutual exclusion, level legality, synchronization,
timeliness, energy sums) on random applications — two implementations
of the semantics checking each other.
"""

import random

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.analysis import assert_valid_trace
from repro.core import ALL_SCHEMES, get_policy
from repro.graph import random_graph
from repro.offline import build_plan
from repro.power import NO_OVERHEAD, PAPER_OVERHEAD, transmeta_model, xscale_model
from repro.sim import sample_realization, simulate
from repro.workloads import application_with_load

_POWER = {"transmeta": transmeta_model(), "xscale": xscale_model()}


@settings(max_examples=25, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(seed=st.integers(0, 10_000),
       scheme=st.sampled_from(ALL_SCHEMES),
       model=st.sampled_from(["transmeta", "xscale"]),
       m=st.sampled_from([1, 2, 3]))
def test_traces_verify_against_independent_oracle(seed, scheme, model, m):
    power = _POWER[model]
    graph = random_graph(random.Random(seed))
    app = application_with_load(graph, 0.6, m)
    policy = get_policy(scheme)
    overhead = NO_OVERHEAD if scheme == "NPM" else PAPER_OVERHEAD
    reserve = overhead.per_task_reserve(power) if policy.requires_reserve \
        else 0.0
    plan = build_plan(app, m, reserve=reserve)
    rng = np.random.default_rng(seed)
    rl = sample_realization(plan.structure, rng)
    run = policy.start_run(plan, power, overhead, realization=rl)
    result = simulate(plan, run, power, overhead, rl, collect_trace=True)
    assert_valid_trace(app, plan.structure, result, power)
