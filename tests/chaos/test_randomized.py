"""Randomized chaos: seed-derived fault plans never change results.

Each case builds a :meth:`FaultPlan.random` schedule from a small
integer seed and runs the same cached sweep twice under it — once
against a cold cache (faults land in the dispatch path) and once warm
(faults land in the cache-read path).  Whatever the plan injected, both
sweeps must equal the fault-free serial reference exactly.  On failure
the assertion message carries ``plan.describe()``; rebuilding the plan
from the printed seed (with a fresh scratch directory) replays the
exact fault schedule.
"""

import warnings

import pytest

from repro.experiments import EvaluationCache, ExecutionContext, RunConfig
from repro.experiments.faults import FaultPlan
from repro.experiments.sweeps import sweep_load
from tests.conftest import build_nested_or_graph

SEEDS = (0, 1, 2, 3, 4, 5)
LOADS = (0.3, 0.6, 0.9)


@pytest.fixture(scope="module")
def graph():
    return build_nested_or_graph()


@pytest.fixture(scope="module")
def cfg():
    # no chunk_timeout: random plans may hang, and a hang is transparent
    # (sleep, then continue) — the sweep just runs a little longer
    return RunConfig(schemes=("GSS", "NPM"), n_runs=30, seed=11,
                     max_retries=3)


@pytest.fixture(scope="module")
def reference(graph, cfg):
    return sweep_load(graph, cfg, LOADS)


@pytest.mark.parametrize("seed", SEEDS)
def test_random_fault_plan_is_invisible_in_results(tmp_path, graph, cfg,
                                                   reference, seed):
    scratch = tmp_path / "scratch"
    scratch.mkdir()
    plan = FaultPlan.random(seed, scratch=str(scratch), n_faults=2,
                            hang_seconds=0.3)
    detail = f"replay with:\n{plan.describe()}"
    cache = EvaluationCache(tmp_path / "cache")
    with ExecutionContext(n_jobs=2, cache=cache, fault_plan=plan) as ctx:
        with warnings.catch_warnings():
            # recovery warnings are the point here, not a failure
            warnings.simplefilter("ignore", RuntimeWarning)
            cold = sweep_load(graph, cfg, LOADS, context=ctx)
            warm = sweep_load(graph, cfg, LOADS, context=ctx)
    assert cold.points == reference.points, detail
    assert warm.points == reference.points, detail
    assert cold.meta["speed_changes"] == reference.meta["speed_changes"], \
        detail
    assert cold.meta["resilience"]["degradations"] + \
        warm.meta["resilience"]["degradations"] <= 1, detail


def test_replayed_plan_injects_identically(tmp_path, graph, cfg, reference):
    """Same seed + fresh scratch = same recovery counters, same results."""
    metas = []
    for attempt in ("first", "second"):
        scratch = tmp_path / f"scratch-{attempt}"
        scratch.mkdir()
        # seed 1 injects a worker-chunk raise on each pool's first
        # dispatch — a fault that actually fires at point level
        plan = FaultPlan.random(1, scratch=str(scratch), n_faults=2,
                                hang_seconds=0.3)
        # fused=False keeps the points on the pool dispatch path the
        # plan targets (a fused sweep never dispatches to workers)
        with ExecutionContext(n_jobs=2, fault_plan=plan) as ctx:
            with warnings.catch_warnings():
                warnings.simplefilter("ignore", RuntimeWarning)
                series = sweep_load(graph, cfg, LOADS, context=ctx,
                                    fused=False)
        assert series.points == reference.points, plan.describe()
        metas.append(series.meta["resilience"])
    assert metas[0] == metas[1]
    assert metas[0]["retries"] >= 1  # the plan really injected something
