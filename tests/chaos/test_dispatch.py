"""Dispatch-only chaos: fleet failure modes the local backend cannot hit.

Scenarios beyond the backend-parametrized matrix (which re-runs every
existing chaos test against the dispatcher): an executor killed
mid-sweep with its points re-dispatched, a hung point stolen past its
``chunk_timeout`` and the straggler's late delivery deduplicated, two
drivers racing on one shared cache store, injected send/recv transport
faults, and a fleet that never comes up degrading to the local path.

Every scenario asserts the same invariant as the rest of the tier: the
recovered sweep equals the fault-free serial reference bit for bit.
"""

import threading
import time
import warnings

import pytest

from repro.experiments import EvaluationCache, ExecutionContext, RunConfig
from repro.experiments import dispatch as dispatch_mod
from repro.experiments.faults import FaultPlan, FaultSpec
from repro.experiments.sweeps import sweep_load
from tests.conftest import build_nested_or_graph

LOADS = (0.2, 0.4, 0.6, 0.8)


@pytest.fixture(scope="module")
def graph():
    return build_nested_or_graph()


@pytest.fixture(scope="module")
def cfg():
    return RunConfig(schemes=("GSS", "NPM"), n_runs=30, seed=11,
                     max_retries=3)


@pytest.fixture(scope="module")
def reference(graph, cfg):
    # pinned to the local backend regardless of the session default the
    # autouse backend fixture installs: the reference stays serial
    return sweep_load(graph, cfg.with_(backend="local"), LOADS)


def _dispatch_ctx(fault_plan=None, cache=None, executors=2, **kwargs):
    return ExecutionContext(n_jobs=1, cache=cache, backend="dispatch",
                            executors=executors, fault_plan=fault_plan,
                            **kwargs)


class TestWorkerDeath:
    def test_worker_killed_mid_sweep_points_redispatched(
            self, tmp_path, graph, cfg, reference):
        """The PR 5 acceptance scenario on the fleet: one executor is
        crashed while evaluating point 1; the driver sees EOF and the
        point lands on a surviving executor, bit-identically."""
        scratch = tmp_path / "scratch"
        scratch.mkdir()
        plan = FaultPlan(specs=(
            FaultSpec(site="worker-dead", action="crash", key=1),),
            scratch=str(scratch))
        with _dispatch_ctx(fault_plan=plan) as ctx:
            series = sweep_load(graph, cfg, LOADS, context=ctx)
            stats = ctx.dispatch_stats()
        assert series.points == reference.points
        assert series.meta["speed_changes"] == \
            reference.meta["speed_changes"]
        assert stats["worker_deaths"] >= 1
        assert series.meta["resilience"]["retries"] >= 1
        assert series.meta["resilience"]["degradations"] == 0
        assert stats["completed"] == len(LOADS)
        assert sum(stats["per_executor"].values()) == len(LOADS)

    def test_worker_chunk_crash_fires_in_executors_too(
            self, tmp_path, graph, cfg, reference):
        """The original worker-chunk site is honored by the dispatch
        backend with the same keys: a crash at point 2 kills the
        executor process mid-task."""
        scratch = tmp_path / "scratch"
        scratch.mkdir()
        plan = FaultPlan(specs=(
            FaultSpec(site="worker-chunk", action="crash", key=2),),
            scratch=str(scratch))
        with _dispatch_ctx(fault_plan=plan) as ctx:
            series = sweep_load(graph, cfg, LOADS, context=ctx)
            stats = ctx.dispatch_stats()
        assert series.points == reference.points
        assert stats["worker_deaths"] >= 1
        assert series.meta["dispatch"]["completed"] == len(LOADS)


class TestStealAfterHang:
    def test_hung_point_is_stolen_and_straggler_deduped(
            self, tmp_path, graph, cfg, reference):
        """A point hung past ``chunk_timeout`` is re-dispatched to the
        other executor; when the straggler finally delivers the same
        cache key, the duplicate is dropped, not double-counted."""
        scratch = tmp_path / "scratch"
        scratch.mkdir()
        plan = FaultPlan(specs=(
            FaultSpec(site="worker-chunk", action="hang", key=1),),
            scratch=str(scratch), hang_seconds=1.5)
        hung_cfg = cfg.with_(chunk_timeout=0.3)
        with _dispatch_ctx(fault_plan=plan) as ctx:
            with warnings.catch_warnings():
                warnings.simplefilter("ignore", RuntimeWarning)
                series = sweep_load(graph, hung_cfg, LOADS, context=ctx)
                # wait out the hang so the straggler's frame is on the
                # wire, then run a second sweep on the same fleet: its
                # first pump reads the stale-generation result and must
                # dedup it, not bind it to the new sweep
                time.sleep(plan.hang_seconds + 0.5)
                again = sweep_load(graph, hung_cfg, LOADS, context=ctx)
            stats = ctx.dispatch_stats()
        assert series.points == reference.points
        assert again.points == reference.points
        assert stats["stolen"] >= 1
        assert series.meta["resilience"]["timeouts"] >= 1
        # the straggler's delivery arrived after the steal completed —
        # either within the first sweep or drained by the second
        assert stats["duplicates"] >= 1


class TestCacheStoreRace:
    def test_two_drivers_race_on_one_cache_store(self, tmp_path, graph,
                                                 cfg, reference):
        """Two dispatch drivers sweeping the same points into one
        ``.repro-cache`` store concurrently: both sweeps bit-identical,
        and a fresh context replays everything from cache."""
        root = tmp_path / "cache"
        out = {}
        errors = []

        def _drive(tag):
            try:
                cache = EvaluationCache(root)
                with _dispatch_ctx(cache=cache) as ctx:
                    out[tag] = sweep_load(graph, cfg, LOADS, context=ctx)
            except Exception as exc:  # pragma: no cover - failure path
                errors.append((tag, exc))

        threads = [threading.Thread(target=_drive, args=(tag,))
                   for tag in ("a", "b")]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=120)
        assert not errors, errors
        assert out["a"].points == reference.points
        assert out["b"].points == reference.points
        replay_cache = EvaluationCache(root)
        with ExecutionContext(cache=replay_cache) as ctx:
            replay = sweep_load(graph, cfg, LOADS, context=ctx)
        assert replay.points == reference.points
        assert replay.meta["cache"]["hits"] == len(LOADS)


class TestTransportFaults:
    def test_send_fault_drops_executor_and_recovers(
            self, tmp_path, graph, cfg, reference):
        scratch = tmp_path / "scratch"
        scratch.mkdir()
        plan = FaultPlan(specs=(
            FaultSpec(site="dispatch-send", action="raise", key=0),),
            scratch=str(scratch))
        with _dispatch_ctx(fault_plan=plan) as ctx:
            series = sweep_load(graph, cfg, LOADS, context=ctx)
            stats = ctx.dispatch_stats()
        assert series.points == reference.points
        # the send failure costs a connection, never a retry budget
        assert series.meta["resilience"]["degradations"] == 0
        assert stats["completed"] == len(LOADS)

    def test_recv_fault_burns_a_retry_and_recovers(
            self, tmp_path, graph, cfg, reference):
        scratch = tmp_path / "scratch"
        scratch.mkdir()
        plan = FaultPlan(specs=(
            FaultSpec(site="dispatch-recv", action="raise", key=3),),
            scratch=str(scratch))
        with _dispatch_ctx(fault_plan=plan) as ctx:
            series = sweep_load(graph, cfg, LOADS, context=ctx)
        assert series.points == reference.points
        assert series.meta["resilience"]["retries"] >= 1
        assert series.meta["resilience"]["degradations"] == 0

    def test_randomized_dispatch_sites_are_invisible(
            self, tmp_path, graph, cfg, reference):
        """Seed-derived plans over the *full* registry (dispatch sites
        included) never change results."""
        from repro.experiments.faults import SITES
        for seed in (0, 1, 2):
            scratch = tmp_path / f"scratch-{seed}"
            scratch.mkdir()
            plan = FaultPlan.random(seed, scratch=str(scratch),
                                    n_faults=2, hang_seconds=0.3,
                                    sites=SITES)
            with _dispatch_ctx(fault_plan=plan) as ctx:
                with warnings.catch_warnings():
                    warnings.simplefilter("ignore", RuntimeWarning)
                    series = sweep_load(graph, cfg, LOADS, context=ctx)
            assert series.points == reference.points, plan.describe()


class TestNoExecutors:
    def test_unreachable_fleet_degrades_to_local_path(
            self, monkeypatch, graph, cfg, reference):
        """No executor ever connects: one warning, then the sweep runs
        on the local fused path with identical results."""
        monkeypatch.setattr(dispatch_mod, "CONNECT_TIMEOUT", 0.4)
        monkeypatch.setattr(dispatch_mod, "worker_main",
                            lambda *a, **k: 0)  # executors exit at birth
        with _dispatch_ctx() as ctx:
            with pytest.warns(RuntimeWarning,
                              match="dispatch backend unreachable"):
                series = sweep_load(graph, cfg, LOADS, context=ctx)
            # the failure is remembered: no second connect timeout
            assert ctx.dispatch_fleet() is None
            stats = ctx.dispatch_stats()
        assert series.points == reference.points
        assert stats["dispatched"] == 0
