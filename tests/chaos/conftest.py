"""Chaos-tier conftest: run every scenario against every backend.

The ``backend`` fixture (tests/conftest.py) parametrizes the session
defaults over ``local`` and ``dispatch``; making it autouse here is the
whole refactor — every existing chaos test runs under both backends
with no per-test edits, which mechanically enforces the ROADMAP's
acceptance bar ("the chaos tier must pass unchanged against the new
backend").  Dispatch-only scenarios live in ``test_dispatch.py``.
"""

from __future__ import annotations

import pytest


@pytest.fixture(autouse=True)
def _backend_matrix(backend):
    """Apply the backend parametrization to every chaos test."""
    return backend
