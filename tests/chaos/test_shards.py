"""Chaos for the sharded fused sweep: kill a shard, get exact floats.

The ``shard-exec`` fault site fires at the start of one shard's
execution — on pool workers and dispatch executors alike, since the
shard travels through the same ``_evaluate_app_point`` task protocol.
Each scenario injects a failure into shard 1 of 3 mid-sweep and
asserts the recovered sweep equals the monolithic fused reference bit
for bit, with the fan-out still crossing process boundaries (the
recovery must not silently degrade the whole sweep to the inline
pass).  The autouse backend matrix runs every scenario against both
backends: a crashed pool worker re-dispatches after a pool rebuild, a
crashed executor's shard is re-dispatched to a survivor.
"""

import warnings

import pytest

from repro.experiments import ExecutionContext, RunConfig
from repro.experiments.faults import FaultPlan, FaultSpec
from repro.experiments.fused import evaluate_points_fused, take_fused_meta
from repro.workloads import application_with_load, figure3_graph

LOADS = (0.3, 0.5, 0.8)


@pytest.fixture(scope="module")
def graph():
    return figure3_graph()


@pytest.fixture(scope="module")
def cfg():
    return RunConfig(schemes=("GSS", "SPM", "AS"), n_runs=30, seed=11,
                     max_retries=4)


@pytest.fixture(scope="module")
def apps(graph, cfg):
    return [application_with_load(graph, ld, cfg.n_processors)
            for ld in LOADS]


@pytest.fixture(scope="module")
def reference(apps, cfg):
    # monolithic fused pass in this process: the fault-free reference
    results = evaluate_points_fused(apps, [cfg] * len(apps))
    take_fused_meta()
    return results


def _assert_identical(a, b):
    import numpy as np
    assert np.array_equal(a.npm_energy, b.npm_energy)
    assert a.path_keys == b.path_keys
    for scheme in a.normalized:
        assert np.array_equal(a.absolute[scheme], b.absolute[scheme])
        assert np.array_equal(a.speed_changes[scheme],
                              b.speed_changes[scheme])


class TestShardExecFaults:
    def test_injected_raise_is_retried_bit_identically(
            self, tmp_path, apps, cfg, reference):
        scratch = tmp_path / "scratch"
        scratch.mkdir()
        plan = FaultPlan(specs=(
            FaultSpec(site="shard-exec", action="raise", key=1),),
            scratch=str(scratch))
        with ExecutionContext(n_jobs=3, fault_plan=plan) as ctx:
            sharded = evaluate_points_fused(apps, [cfg] * len(apps),
                                            context=ctx, shards=3)
        meta = take_fused_meta()
        assert meta["shards"] == 3
        assert meta["transport"] != "inline"  # recovery stayed sharded
        for res, ref in zip(sharded, reference):
            _assert_identical(res, ref)

    def test_shard_executor_crash_mid_sweep_recovers(
            self, tmp_path, apps, cfg, reference):
        """The headline scenario: the process running shard 1 dies.

        On the local backend the pool breaks and is rebuilt (with a
        warning); on dispatch the driver sees the executor's EOF and
        re-dispatches the shard to a survivor.  Either way the reduced
        sweep must equal the monolithic reference exactly.
        """
        scratch = tmp_path / "scratch"
        scratch.mkdir()
        plan = FaultPlan(specs=(
            FaultSpec(site="shard-exec", action="crash", key=1),),
            scratch=str(scratch))
        with warnings.catch_warnings():
            # "rebuilding the pool" fires locally, nothing on dispatch
            warnings.simplefilter("ignore", RuntimeWarning)
            with ExecutionContext(n_jobs=3, fault_plan=plan) as ctx:
                sharded = evaluate_points_fused(apps, [cfg] * len(apps),
                                                context=ctx, shards=3)
                recovered = (ctx.resilience["rebuilds"]
                             + ctx.resilience["retries"]
                             + ctx.dispatch_stats()["worker_deaths"])
        meta = take_fused_meta()
        assert meta["shards"] == 3
        assert meta["transport"] != "inline"
        assert recovered >= 1  # the crash really happened and was handled
        for res, ref in zip(sharded, reference):
            _assert_identical(res, ref)
