"""FaultPlan mechanics: matching, one-shot accounting, replayability.

The injection layer itself must be deterministic, or a failing chaos
run could not be replayed from its printed seed.  These tests pin the
matching rules (per-process occurrence vs explicit key), the global
``times`` budget through scratch-directory markers, and the inert
behaviour when no plan is installed.
"""

import time

import pytest

from repro.errors import ConfigError
from repro.experiments.faults import (
    ACTIONS,
    SITES,
    FaultPlan,
    FaultSpec,
    active,
    fire,
    install,
    uninstall,
)


@pytest.fixture(autouse=True)
def _clean_slate():
    """Every test starts and ends with no plan installed."""
    uninstall()
    yield
    uninstall()


class TestValidation:
    def test_unknown_site_rejected(self):
        with pytest.raises(ConfigError, match="unknown fault site"):
            FaultSpec(site="disk-write", action="raise")

    def test_unknown_action_rejected(self):
        with pytest.raises(ConfigError, match="unknown fault action"):
            FaultSpec(site="worker-chunk", action="explode")

    def test_occurrence_is_one_based(self):
        with pytest.raises(ConfigError, match="1-based"):
            FaultSpec(site="worker-chunk", action="raise", occurrence=0)

    def test_times_must_be_positive(self):
        with pytest.raises(ConfigError, match="times"):
            FaultSpec(site="worker-chunk", action="raise", times=0)

    def test_negative_hang_rejected(self):
        with pytest.raises(ConfigError, match="hang_seconds"):
            FaultPlan(hang_seconds=-1.0)


class TestMatching:
    def test_fires_on_nth_occurrence_only(self):
        install(FaultPlan(specs=(
            FaultSpec(site="worker-chunk", action="raise", occurrence=3),)))
        assert fire("worker-chunk") is None
        assert fire("worker-chunk") is None
        assert fire("worker-chunk") == "raise"
        assert fire("worker-chunk") is None  # times=1: budget spent

    def test_occurrence_counts_are_per_site(self):
        install(FaultPlan(specs=(
            FaultSpec(site="shm-attach", action="raise", occurrence=2),)))
        assert fire("worker-chunk") is None  # does not advance shm-attach
        assert fire("shm-attach") is None
        assert fire("shm-attach") == "raise"

    def test_key_match_overrides_occurrence(self):
        install(FaultPlan(specs=(
            FaultSpec(site="worker-chunk", action="raise", key=30),)))
        assert fire("worker-chunk", key=0) is None
        assert fire("worker-chunk", key=10) is None
        assert fire("worker-chunk", key=30) == "raise"

    def test_times_budget_without_scratch(self):
        install(FaultPlan(specs=(
            FaultSpec(site="worker-chunk", action="raise", key=7, times=2),)))
        assert fire("worker-chunk", key=7) == "raise"
        assert fire("worker-chunk", key=7) == "raise"
        assert fire("worker-chunk", key=7) is None

    def test_reinstall_resets_local_accounting(self):
        plan = FaultPlan(specs=(
            FaultSpec(site="worker-chunk", action="raise", occurrence=1),))
        install(plan)
        assert fire("worker-chunk") == "raise"
        install(plan)  # a fresh worker process starts from scratch
        assert fire("worker-chunk") == "raise"

    def test_no_plan_is_inert(self):
        for site in SITES:
            assert fire(site) is None
            assert fire(site, key=123) is None
        assert active() is None


class TestScratchAccounting:
    def test_markers_make_times_global(self, tmp_path):
        plan = FaultPlan(specs=(
            FaultSpec(site="worker-chunk", action="raise", occurrence=1),),
            scratch=str(tmp_path))
        install(plan)
        assert fire("worker-chunk") == "raise"
        # simulate a second process (or a re-dispatched chunk in a
        # rebuilt pool): counters reset, but the marker file persists
        install(plan)
        assert fire("worker-chunk") is None
        assert list(tmp_path.iterdir()), "marker file expected"

    def test_times_slots_with_scratch(self, tmp_path):
        plan = FaultPlan(specs=(
            FaultSpec(site="worker-chunk", action="raise", key=5, times=2),),
            scratch=str(tmp_path))
        install(plan)
        assert fire("worker-chunk", key=5) == "raise"
        install(plan)
        assert fire("worker-chunk", key=5) == "raise"
        install(plan)
        assert fire("worker-chunk", key=5) is None

    def test_filtered_plan_does_not_steal_other_specs_markers(self, tmp_path):
        """Regression: marker names must survive :meth:`FaultPlan.only`.

        The parent installs a filtered copy of the plan; if markers
        were named by spec *position*, the parent's first spec would
        claim the slot belonging to the full plan's first spec and
        silently disarm a worker-side fault.
        """
        plan = FaultPlan(specs=(
            FaultSpec(site="shm-attach", action="raise", key=10),
            FaultSpec(site="cache-read", action="corrupt", occurrence=1),
        ), scratch=str(tmp_path))
        install(plan.only("cache-read"))  # the parent's copy fires first
        assert fire("cache-read") == "corrupt"
        install(plan)  # a worker's full copy must keep its own budget
        assert fire("shm-attach", key=10) == "raise"

    def test_unwritable_scratch_never_fires(self, tmp_path):
        plan = FaultPlan(specs=(
            FaultSpec(site="worker-chunk", action="raise", occurrence=1),),
            scratch=str(tmp_path / "does-not-exist"))
        install(plan)
        assert fire("worker-chunk") is None


class TestActions:
    def test_hang_sleeps_then_continues(self):
        install(FaultPlan(specs=(
            FaultSpec(site="worker-chunk", action="hang", occurrence=1),),
            hang_seconds=0.05))
        t0 = time.monotonic()
        assert fire("worker-chunk") is None  # hang is transparent
        assert time.monotonic() - t0 >= 0.04

    def test_crash_action_is_matched(self):
        # exercised via check() — fire() would os._exit this process;
        # the real crash path runs in tests/chaos/test_recovery.py
        plan = FaultPlan(specs=(
            FaultSpec(site="worker-chunk", action="crash", occurrence=1),))
        assert plan.check("worker-chunk", None, {}, {}) == "crash"


class TestPlanTools:
    def test_only_filters_sites(self):
        plan = FaultPlan(specs=(
            FaultSpec(site="worker-chunk", action="crash"),
            FaultSpec(site="cache-read", action="corrupt"),
            FaultSpec(site="shm-attach", action="raise"),
        ), scratch="/tmp/x", hang_seconds=0.5, seed=9)
        parent = plan.only("cache-read")
        assert [s.site for s in parent.specs] == ["cache-read"]
        assert parent.scratch == plan.scratch
        assert parent.seed == plan.seed

    def test_random_is_seed_deterministic(self):
        a = FaultPlan.random(seed=424242, n_faults=3)
        b = FaultPlan.random(seed=424242, n_faults=3)
        assert a == b
        assert a.seed == 424242
        for spec in a.specs:
            assert spec.site in SITES
            assert spec.action in ACTIONS

    def test_describe_carries_seed_and_specs(self):
        plan = FaultPlan.random(seed=31337, n_faults=2)
        text = plan.describe()
        assert "31337" in text
        for spec in plan.specs:
            assert spec.site in text
            assert spec.action in text
