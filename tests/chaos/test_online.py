"""The ``online-admit`` fault site: admission survives injected chaos.

The admission probe runs in the driver, once per arrival (keyed by the
arrival index), before the ledger decision is computed.  The contract
pinned here: a ``raise`` is retried under the config's RetryPolicy and
counted in ``OnlineResult.admit_retries``; a ``hang`` only delays the
probe; and in every recovered case the stream — the full admit/reject
ledger *and* every scheme's realized metrics — is bit-identical to the
fault-free run.  Only an exhausted retry budget with ``degrade=False``
may surface the fault.

Runs under both backends via the chaos conftest's autouse matrix; the
plans install parent-side through ``ExecutionContext(fault_plan=...)``,
which must keep ``online-admit`` in its parent-side site filter.
"""

import time

import numpy as np
import pytest

from repro.errors import FaultInjected
from repro.experiments import (
    ExecutionContext,
    OnlineConfig,
    RunConfig,
    simulate_online,
)
from repro.experiments import faults
from repro.experiments.faults import FaultPlan, FaultSpec
from repro.workloads import figure3_graph

GRAPH = figure3_graph()
ONLINE = OnlineConfig(rate=1.0, load=0.7, target_arrivals=20)


@pytest.fixture(autouse=True)
def _clean_slate():
    """No fault plan may leak into (or out of) any scenario."""
    faults.uninstall()
    yield
    faults.uninstall()


def _config(**kwargs):
    return RunConfig(schemes=("NPM", "SPM", "GSS"), n_processors=2,
                     seed=2002, **kwargs)


def _assert_same_stream(a, b):
    """The recovered stream must equal the fault-free one bit for bit."""
    assert np.array_equal(a.arrivals, b.arrivals)
    assert np.array_equal(a.admitted, b.admitted)
    assert np.array_equal(a.windows, b.windows)
    assert np.array_equal(a.npm_energy, b.npm_energy)
    assert a.path_keys == b.path_keys
    for name, st in a.per_scheme.items():
        other = b.per_scheme[name]
        for attr in ("job_energy", "job_normalized", "job_finish",
                     "job_miss", "job_changes"):
            assert np.array_equal(getattr(st, attr),
                                  getattr(other, attr)), (name, attr)


@pytest.fixture(scope="module")
def fault_free():
    faults.uninstall()  # module-scoped: runs before the autouse slate
    return simulate_online(GRAPH, _config(), ONLINE)


class TestAdmitRaise:
    def test_single_raise_is_retried(self, fault_free, tmp_path):
        plan = FaultPlan(specs=(
            FaultSpec(site="online-admit", action="raise", key=3),),
            scratch=str(tmp_path))
        with ExecutionContext(fault_plan=plan):
            res = simulate_online(GRAPH, _config(), ONLINE)
        assert res.admit_retries == 1
        _assert_same_stream(res, fault_free)

    def test_raises_at_several_arrivals(self, fault_free, tmp_path):
        plan = FaultPlan(specs=tuple(
            FaultSpec(site="online-admit", action="raise", key=k)
            for k in (0, 4, 9)), scratch=str(tmp_path))
        with ExecutionContext(fault_plan=plan):
            res = simulate_online(GRAPH, _config(), ONLINE)
        assert res.admit_retries == 3
        _assert_same_stream(res, fault_free)

    def test_exhausted_budget_degrades_probe_free(self, fault_free,
                                                  tmp_path):
        # the same arrival keeps raising past max_retries: with
        # degrade=True the decision is computed probe-free and the
        # ledger still matches the fault-free stream exactly
        plan = FaultPlan(specs=(
            FaultSpec(site="online-admit", action="raise", key=2,
                      times=10),), scratch=str(tmp_path))
        cfg = _config(max_retries=2, degrade=True)
        with ExecutionContext(fault_plan=plan):
            res = simulate_online(GRAPH, cfg, ONLINE)
        assert res.admit_retries == 3  # max_retries + the first attempt
        _assert_same_stream(res, fault_free)

    def test_exhausted_budget_without_degrade_raises(self, tmp_path):
        plan = FaultPlan(specs=(
            FaultSpec(site="online-admit", action="raise", key=2,
                      times=10),), scratch=str(tmp_path))
        cfg = _config(max_retries=1, degrade=False)
        with ExecutionContext(fault_plan=plan):
            with pytest.raises(FaultInjected, match="arrival 2"):
                simulate_online(GRAPH, cfg, ONLINE)


class TestAdmitHang:
    def test_hang_only_delays_the_decision(self, fault_free, tmp_path):
        plan = FaultPlan(specs=(
            FaultSpec(site="online-admit", action="hang", key=1),),
            scratch=str(tmp_path), hang_seconds=0.2)
        t0 = time.perf_counter()
        with ExecutionContext(fault_plan=plan):
            res = simulate_online(GRAPH, _config(), ONLINE)
        elapsed = time.perf_counter() - t0
        assert elapsed >= 0.2  # the probe really slept
        assert res.admit_retries == 0  # a hang is not a retry
        _assert_same_stream(res, fault_free)


class TestDirectInstall:
    def test_fire_without_plan_is_inert(self, fault_free):
        # the hot path: no plan installed, every probe is one None check
        res = simulate_online(GRAPH, _config(), ONLINE)
        assert res.admit_retries == 0
        _assert_same_stream(res, fault_free)

    def test_occurrence_matching_without_context(self, fault_free,
                                                 tmp_path):
        # the site also works through a bare install() (no context):
        # occurrence counts admission probes within the process
        faults.install(FaultPlan(specs=(
            FaultSpec(site="online-admit", action="raise", occurrence=5),),
            scratch=str(tmp_path)))
        res = simulate_online(GRAPH, _config(), ONLINE)
        assert res.admit_retries == 1
        _assert_same_stream(res, fault_free)
