"""Chaos suite: deterministic fault injection against the engine.

These tests drive every recovery path of the resilient execution
engine — worker crashes, hung chunks, shared-memory attach failures,
corrupt cache entries — through :mod:`repro.experiments.faults` and
prove the recovered results bit-identical to the fault-free serial
reference.  They sleep on purpose (hangs, timeouts, backoff), so CI
runs them as their own job; see ``docs/testing.md``.
"""
