"""Recovery paths of the resilient executor, proven bit-identical.

Two layers:

* ``TestResilientMap`` drives :meth:`ExecutionContext.map` directly
  with tiny tasks — injected raises, worker crashes (``os._exit`` in a
  pool worker), hangs vs ``chunk_timeout``, transport fallback, and
  both degradation modes (serial in the parent vs ``ParallelError``).
* ``TestChaosAcceptance`` is the headline contract from the issue: a
  10-point load sweep that survives a worker crash at chunk 3, a hung
  chunk, a shared-memory attach failure and a corrupt cache entry —
  and still equals the fault-free serial reference *exactly*, with
  every recovery recorded in ``series.meta``.
"""

import warnings

import pytest

from repro.errors import FaultInjected, ParallelError, TransportError
from repro.experiments import (
    EvaluationCache,
    ExecutionContext,
    RetryPolicy,
    RunConfig,
    evaluate_application,
    evaluation_key,
)
from repro.experiments import faults
from repro.experiments.faults import FaultPlan, FaultSpec
from repro.experiments.sweeps import sweep_load
from repro.workloads import application_with_load, figure3_graph

LOADS = [round(0.1 * i, 1) for i in range(1, 11)]  # the 10-point grid


def _square(x):
    """Worker task that honours the worker-chunk fault site."""
    if faults.fire("worker-chunk", key=x) == "raise":
        raise FaultInjected(f"injected at item {x}")
    return x * x


def _flaky_transport(x, fail):
    """Worker task standing in for a chunk whose shm attach fails."""
    if fail:
        raise TransportError(f"no segment for item {x}")
    return x + 100


class TestResilientMap:
    def test_injected_raise_is_retried(self, tmp_path):
        plan = FaultPlan(specs=(
            FaultSpec(site="worker-chunk", action="raise", key=2),),
            scratch=str(tmp_path))
        with ExecutionContext(n_jobs=2, fault_plan=plan) as ctx:
            assert ctx.map(_square, [(i,) for i in range(5)]) == \
                [i * i for i in range(5)]
            stats = ctx.resilience_stats()
        assert stats["retries"] == 1
        assert stats["degradations"] == 0

    def test_worker_crash_rebuilds_pool_once(self, tmp_path):
        plan = FaultPlan(specs=(
            FaultSpec(site="worker-chunk", action="crash", key=1),),
            scratch=str(tmp_path))
        with ExecutionContext(n_jobs=2, fault_plan=plan) as ctx:
            with pytest.warns(RuntimeWarning, match="rebuilding the pool"):
                results = ctx.map(_square, [(i,) for i in range(6)])
            assert results == [i * i for i in range(6)]
            assert ctx.resilience["rebuilds"] == 1
            assert ctx.resilience["degradations"] == 0
            assert ctx.pools_created == 2

    def test_hung_item_redispatched_within_timeout(self, tmp_path):
        plan = FaultPlan(specs=(
            FaultSpec(site="worker-chunk", action="hang", key=0),),
            scratch=str(tmp_path), hang_seconds=2.0)
        policy = RetryPolicy(max_retries=6, chunk_timeout=0.4)
        with ExecutionContext(n_jobs=2, fault_plan=plan) as ctx:
            results = ctx.map(_square, [(i,) for i in range(4)],
                              policy=policy)
            assert results == [i * i for i in range(4)]
            stats = ctx.resilience_stats()
        assert stats["timeouts"] >= 1
        assert stats["degradations"] == 0

    def test_transport_error_switches_to_fallback_args(self):
        with ExecutionContext(n_jobs=2) as ctx:
            results = ctx.map(
                _flaky_transport, [(i, True) for i in range(3)],
                fallback_args=[(i, False) for i in range(3)])
            assert results == [100, 101, 102]
            stats = ctx.resilience_stats()
        # the fallback does not burn a retry — it is a transport switch
        assert stats["shm_fallbacks"] == 3
        assert stats["retries"] == 0

    def test_persistent_transport_error_without_fallback_fails(self):
        policy = RetryPolicy(max_retries=1)
        with ExecutionContext(n_jobs=2) as ctx:
            with pytest.raises(ParallelError), \
                    pytest.warns(RuntimeWarning, match="serially"):
                ctx.map(_flaky_transport, [(0, True)], policy=policy)

    def test_no_degrade_raises_parallel_error(self, tmp_path):
        plan = FaultPlan(specs=(
            FaultSpec(site="worker-chunk", action="crash", key=1),),
            scratch=str(tmp_path))
        policy = RetryPolicy(max_retries=0, degrade=False,
                             max_pool_rebuilds=0)
        with ExecutionContext(n_jobs=2, fault_plan=plan) as ctx:
            with pytest.raises(ParallelError):
                ctx.map(_square, [(i,) for i in range(4)], policy=policy)

    def test_second_pool_break_degrades_to_serial(self, tmp_path):
        plan = FaultPlan(specs=(
            FaultSpec(site="worker-chunk", action="crash", key=1),
            FaultSpec(site="worker-chunk", action="crash", key=3),),
            scratch=str(tmp_path))
        policy = RetryPolicy(max_retries=8)
        # one worker serializes the items, so the two crashes land in
        # separate pool generations (a 2-worker pool could hit both
        # before the parent notices the first break)
        with ExecutionContext(n_jobs=1, fault_plan=plan) as ctx:
            with pytest.warns(RuntimeWarning,
                              match="degrading the remaining"):
                results = ctx.map(_square, [(i,) for i in range(6)],
                                  policy=policy)
            assert results == [i * i for i in range(6)]
            stats = ctx.resilience_stats()
        assert stats["rebuilds"] == 1
        assert stats["degradations"] >= 1

    def test_deterministic_exception_still_fails_fast(self):
        # an ordinary worker exception is not retryable: it names a bug
        with ExecutionContext(n_jobs=2) as ctx:
            with pytest.raises(ParallelError, match="item 1"):
                ctx.map(_flaky_transport, [(0, False), (1,)],
                        labels=["item 0", "item 1"])
            assert ctx.resilience["retries"] == 0


class TestChaosAcceptance:
    def test_sweep_survives_all_fault_classes_bit_identically(self, tmp_path):
        """The issue's headline scenario, end to end.

        Point-level execution is serial (context ``n_jobs=1``) so each
        point fans its run-chunks out on the context pool: 50 runs in
        chunks of 10 give chunks at offsets 0/10/20/30/40.  The plan
        injects a shared-memory attach failure at chunk 1, a hang at
        chunk 2, a worker crash at chunk 3, and corrupts the one cache
        entry that exists (pre-populated for the first point).  The
        sweep must equal the fault-free serial reference exactly and
        record every recovery in ``series.meta``.
        """
        graph = figure3_graph()
        cfg = RunConfig(schemes=("GSS", "SPM"), n_runs=50, seed=5,
                        n_jobs=2, runs_per_chunk=10, parallel_min_runs=0,
                        max_retries=6, chunk_timeout=1.0,
                        run_level_pool=True)
        reference = sweep_load(graph, cfg.with_(n_jobs=1), LOADS)

        scratch = tmp_path / "scratch"
        scratch.mkdir()
        cache = EvaluationCache(tmp_path / "cache")
        app0 = application_with_load(graph, LOADS[0], cfg.n_processors)
        cache.put(evaluation_key(app0, cfg),
                  evaluate_application(app0, cfg.with_(n_jobs=1)))

        plan = FaultPlan(specs=(
            FaultSpec(site="shm-attach", action="raise", key=10),
            FaultSpec(site="worker-chunk", action="hang", key=20),
            FaultSpec(site="worker-chunk", action="crash", key=30),
            FaultSpec(site="cache-read", action="corrupt", occurrence=1),
        ), scratch=str(scratch), hang_seconds=2.2)

        with ExecutionContext(n_jobs=1, cache=cache, fault_plan=plan) as ctx:
            with pytest.warns(RuntimeWarning) as caught:
                series = sweep_load(graph, cfg, LOADS, context=ctx,
                                    fused=False)

        # --- bit-identical to the fault-free serial reference -----------
        assert series.points == reference.points
        assert series.meta["speed_changes"] == \
            reference.meta["speed_changes"]

        # --- every recovery recorded ------------------------------------
        res = series.meta["resilience"]
        assert res["shm_fallbacks"] == 1   # chunk 1 re-sent pickled
        assert res["timeouts"] >= 1        # chunk 2 hung past the timeout
        assert res["rebuilds"] == 1        # chunk 3 crashed the pool
        assert res["retries"] >= 2
        assert res["degradations"] == 0    # recovery never went serial
        cache_meta = series.meta["cache"]
        assert cache_meta["quarantined"] == 1
        assert cache_meta["errors"] == 1

        # the corrupt entry was moved aside, not destroyed
        quarantined = list(cache.quarantine_dir().iterdir())
        assert len(quarantined) == 1
        messages = [str(w.message) for w in caught]
        assert any("quarantined" in m for m in messages)
        assert any("rebuilding the pool" in m for m in messages)

    def test_fused_sweep_still_exercises_cache_faults(self, tmp_path):
        """Parent-side fault sites keep firing under the fused shape.

        A fused sweep never dispatches to workers, but the cache-read
        path still runs in the parent — a corrupt entry must be
        quarantined and recomputed (by the fused kernel) bit-identically
        to the fault-free reference.
        """
        graph = figure3_graph()
        cfg = RunConfig(schemes=("GSS", "SPM"), n_runs=50, seed=5)
        reference = sweep_load(graph, cfg, LOADS)
        scratch = tmp_path / "scratch"
        scratch.mkdir()
        cache = EvaluationCache(tmp_path / "cache")
        app0 = application_with_load(graph, LOADS[0], cfg.n_processors)
        cache.put(evaluation_key(app0, cfg),
                  evaluate_application(app0, cfg))
        plan = FaultPlan(specs=(
            FaultSpec(site="cache-read", action="corrupt", occurrence=1),
        ), scratch=str(scratch))
        with ExecutionContext(n_jobs=1, cache=cache, fault_plan=plan) as ctx:
            with pytest.warns(RuntimeWarning, match="quarantined"):
                series = sweep_load(graph, cfg, LOADS, context=ctx)
            assert ctx.pools_created == 0  # everything ran fused
        assert series.points == reference.points
        assert series.meta["speed_changes"] == \
            reference.meta["speed_changes"]
        assert series.meta["cache"]["quarantined"] == 1
        assert len(list(cache.quarantine_dir().iterdir())) == 1

    def test_rerun_after_chaos_hits_clean_cache(self, tmp_path):
        """Entries written during a chaotic sweep are trustworthy."""
        graph = figure3_graph()
        cfg = RunConfig(schemes=("GSS",), n_runs=40, seed=9, n_jobs=2,
                        runs_per_chunk=10, parallel_min_runs=0,
                        max_retries=6, run_level_pool=True)
        loads = LOADS[:4]
        reference = sweep_load(graph, cfg.with_(n_jobs=1), loads)
        scratch = tmp_path / "scratch"
        scratch.mkdir()
        plan = FaultPlan(specs=(
            FaultSpec(site="worker-chunk", action="crash", key=20),),
            scratch=str(scratch))
        cache = EvaluationCache(tmp_path / "cache")
        with ExecutionContext(n_jobs=1, cache=cache, fault_plan=plan) as ctx:
            with pytest.warns(RuntimeWarning, match="rebuilding the pool"):
                chaotic = sweep_load(graph, cfg, loads, context=ctx,
                                     fused=False)
        with ExecutionContext(n_jobs=1, cache=cache) as ctx:
            replay = sweep_load(graph, cfg, loads, context=ctx)
        assert chaotic.points == reference.points
        assert replay.points == reference.points
        assert replay.meta["cache"]["hits"] == len(loads)
        assert replay.meta["resilience"]["retries"] == 0
