"""Shared fixtures: small canonical graphs, power models, plans.

Also registers the hypothesis profiles: ``repro`` (the default) disables
the per-example deadline — equivalence fuzzing simulates whole
applications per example, and a deadline would turn slow-but-correct
examples into flaky failures — while ``ci`` inherits it with a smaller
example budget for the time-boxed coverage job.  Select with
``HYPOTHESIS_PROFILE=ci``.
"""

from __future__ import annotations

import os

import numpy as np
import pytest
from hypothesis import HealthCheck
from hypothesis import settings as hypothesis_settings

hypothesis_settings.register_profile(
    "repro", deadline=None,
    suppress_health_check=[HealthCheck.too_slow])
hypothesis_settings.register_profile(
    "ci", parent=hypothesis_settings.get_profile("repro"), max_examples=25)
hypothesis_settings.load_profile(
    os.environ.get("HYPOTHESIS_PROFILE", "repro"))

from repro.graph import GraphBuilder, validate_graph
from repro.power import (
    NO_OVERHEAD,
    PAPER_OVERHEAD,
    ContinuousPowerModel,
    transmeta_model,
    xscale_model,
)


def _backend_params():
    """The execution backends the chaos/equivalence tiers run against.

    ``REPRO_TEST_BACKENDS`` (comma-separated) restricts the matrix —
    CI pins one job to ``local`` and one to ``dispatch`` so a dispatch
    hang cannot mask a local regression (and vice versa).  The default
    runs both, which is the acceptance bar: every parametrized test
    must pass bit-identically under each backend.
    """
    names = os.environ.get("REPRO_TEST_BACKENDS", "local,dispatch")
    return [n.strip() for n in names.split(",") if n.strip()]


@pytest.fixture(params=_backend_params())
def backend(request, monkeypatch):
    """Route owned execution contexts through one backend per param.

    Patches the session defaults (``engine.DEFAULT_BACKEND`` /
    ``engine.DEFAULT_EXECUTORS``) rather than each call site, so tests
    that build sweeps through any API — contextless ``sweep_load``,
    explicit contexts with ``n_jobs>1``, figure functions — pick the
    backend up with no per-test edits.  Contexts constructed with an
    explicit ``n_jobs=1`` keep resolving to one executor and therefore
    stay on the local path by design (the dispatcher only engages at
    two or more executors).
    """
    from repro.experiments import engine
    monkeypatch.setattr(engine, "DEFAULT_BACKEND", request.param)
    if request.param == "dispatch":
        monkeypatch.setattr(engine, "DEFAULT_EXECUTORS", 2)
    return request.param


def _kernel_tier_params():
    """The kernel tiers the golden equivalence suites run against.

    ``REPRO_TEST_KERNEL_TIERS`` (comma-separated) restricts or extends
    the matrix — the optional CI jit job sets ``numpy,jit`` after
    installing the ``[jit]`` extra.  The default pins ``legacy`` (the
    original entry-tuple loop) against ``numpy`` (the tape
    interpreter), which is the acceptance bar: every parametrized test
    must produce bit-identical floats under each tier.  ``jit`` params
    skip at run time when numba is not importable.
    """
    names = os.environ.get("REPRO_TEST_KERNEL_TIERS", "legacy,numpy")
    return [n.strip() for n in names.split(",") if n.strip()]


@pytest.fixture(params=_kernel_tier_params())
def kernel_tier(request, monkeypatch):
    """Route the batch kernels through one tier per param.

    Patches the session default (``kernels.DEFAULT_KERNEL_TIER``)
    rather than each call site, mirroring the ``backend`` fixture:
    tests that evaluate through any API — ``run_fixed_batch`` directly,
    ``evaluate_application``, fused sweeps — pick the tier up with no
    per-test edits (``RunConfig.kernel_tier`` defaults to None, which
    resolves to the session default).
    """
    from repro.sim import kernels
    if request.param == "jit" and not kernels.jit_available():
        pytest.skip("numba not installed; [jit] extra required")
    monkeypatch.setattr(kernels, "DEFAULT_KERNEL_TIER", request.param)
    # spawned pool/dispatch workers re-read the default from the
    # environment at import time; forked ones inherit the setattr
    monkeypatch.setenv("REPRO_KERNEL_TIER", request.param)
    return request.param


@pytest.fixture
def rng():
    return np.random.default_rng(12345)


@pytest.fixture
def transmeta():
    return transmeta_model()


@pytest.fixture
def xscale():
    return xscale_model()


@pytest.fixture
def continuous():
    return ContinuousPowerModel(s_min=0.1)


@pytest.fixture
def paper_overhead():
    return PAPER_OVERHEAD


@pytest.fixture
def no_overhead():
    return NO_OVERHEAD


def build_chain_graph(n: int = 3, wcet: float = 10.0, acet: float = 5.0):
    """A linear chain T0 -> T1 -> ... (single section, no OR nodes)."""
    b = GraphBuilder("chain")
    prev = None
    for i in range(n):
        b.task(f"T{i}", wcet, acet, after=[prev] if prev else None)
        prev = f"T{i}"
    return b.build_graph()


def build_fork_graph():
    """One AND fork/join: A -> A1 -> (B, C) -> A2 -> D."""
    b = GraphBuilder("fork")
    b.task("A", 8, 5)
    b.and_split("A1", after="A", branches=[("B", 5, 3), ("C", 4, 2)])
    b.and_join("A2", ["B", "C"])
    b.task("D", 5, 3, after=["A2"])
    return b.build_graph()


def build_or_graph():
    """One OR branch/merge: A -> O1 -> (B 30% | C 70%) -> O2 -> D."""
    b = GraphBuilder("orapp")
    b.task("A", 8, 5)
    b.or_branch("O1", after="A", paths={"B": ((8, 6), 0.3),
                                        "C": ((5, 3), 0.7)})
    b.or_merge("O2", ["B", "C"])
    b.task("D", 5, 3, after=["O2"])
    return b.build_graph()


def build_nested_or_graph():
    """Two chained OR branches (nested speculation opportunities)."""
    b = GraphBuilder("nested")
    b.task("A", 6, 3)
    b.or_branch("O1", after="A", paths={"B": ((10, 5), 0.4),
                                        "C": ((4, 2), 0.6)})
    b.or_merge("O2", ["B", "C"])
    b.task("D", 5, 2, after=["O2"])
    b.or_branch("O3", after="D", paths={"E": ((8, 4), 0.5),
                                        "F": ((2, 1), 0.5)})
    b.or_merge("O4", ["E", "F"])
    b.task("G", 3, 1.5, after=["O4"])
    return b.build_graph()


@pytest.fixture
def chain_graph():
    return build_chain_graph()


@pytest.fixture
def fork_graph():
    return build_fork_graph()


@pytest.fixture
def or_graph():
    return build_or_graph()


@pytest.fixture
def nested_or_graph():
    return build_nested_or_graph()


@pytest.fixture
def or_structure(or_graph):
    return validate_graph(or_graph)
