#!/usr/bin/env python
"""Quickstart: build an AND/OR application, run every scheme, compare.

This walks the full pipeline on the paper's Figure 1 structures:

1. build a small AND/OR graph with the fluent builder,
2. attach a deadline via the load metric,
3. run the offline phase (canonical schedules, shifting, LSTs),
4. simulate one run of each scheme on a shared realization,
5. evaluate 500 Monte-Carlo runs and print normalized energies.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import (
    ALL_SCHEMES,
    GraphBuilder,
    RunConfig,
    evaluate_application,
    get_policy,
    sample_realization,
    simulate,
    transmeta_model,
)
from repro.offline import build_plan
from repro.power import NO_OVERHEAD, PAPER_OVERHEAD
from repro.workloads import application_with_load


def build_demo_graph():
    """Figure 1's AND structure feeding its OR structure."""
    b = GraphBuilder("quickstart")
    b.task("A", 8, 5)
    # AND: B and C run in parallel after A1
    b.and_split("A1", after="A", branches=[("B", 5, 3), ("C", 4, 2)])
    b.and_join("A2", ["B", "C"])
    # OR: one of F/G runs, with known probabilities
    b.or_branch("O3", after=["A2"],
                paths={"F": ((8, 6), 0.30), "G": ((5, 3), 0.70)})
    b.or_merge("O4", ["F", "G"])
    b.task("H", 5, 3, after=["O4"])
    return b.build_graph()


def main():
    graph = build_demo_graph()
    app = application_with_load(graph, load=0.5, n_processors=2)
    print(f"application: {app.name}   deadline D = {app.deadline:.1f} "
          f"(load 0.5 on 2 processors)")

    power = transmeta_model()
    reserve = PAPER_OVERHEAD.per_task_reserve(power)
    plan_static = build_plan(app, 2, reserve=0.0)
    plan_dyn = build_plan(app, 2, reserve=reserve)
    print(f"offline phase: T_worst = {plan_static.t_worst:.2f}, "
          f"T_avg = {plan_static.t_avg:.2f}, "
          f"static slack = {plan_static.static_slack:.2f}\n")

    # one paired run of every scheme on the same realization
    rng = np.random.default_rng(7)
    rl = sample_realization(plan_static.structure, rng)
    print(f"{'scheme':>8} {'finish':>9} {'switches':>9} {'energy':>9}")
    for name in ALL_SCHEMES:
        policy = get_policy(name)
        plan = plan_dyn if policy.requires_reserve else plan_static
        overhead = NO_OVERHEAD if name == "NPM" else PAPER_OVERHEAD
        run = policy.start_run(plan, power, overhead, realization=rl)
        res = simulate(plan, run, power, overhead, rl)
        print(f"{name:>8} {res.finish_time:>9.2f} "
              f"{res.n_speed_changes:>9d} {res.total_energy:>9.2f}")

    # Monte-Carlo comparison, normalized to NPM per realization
    cfg = RunConfig(schemes=tuple(ALL_SCHEMES), n_runs=500, seed=2002)
    result = evaluate_application(app, cfg)
    print("\nmean normalized energy over 500 runs (lower is better):")
    for scheme, mean in result.mean_normalized().items():
        bar = "#" * int(mean * 40)
        print(f"{scheme:>8} {mean:6.3f}  {bar}")


if __name__ == "__main__":
    main()
