#!/usr/bin/env python
"""α study on the synthetic application (the Figure 6 experiment).

Sweeps the average/worst-case execution-time ratio α and shows

* how each scheme's normalized energy responds (dynamic schemes track
  run-time slack; SPM cannot),
* the speed-change counts behind the overhead argument,
* the clairvoyant oracle as the single-speed lower bound.

Run:  python examples/alpha_study.py
"""

from repro.core import PAPER_SCHEMES
from repro.experiments import (
    RunConfig,
    render_series,
    render_speed_changes,
    sweep_alpha,
)
from repro.workloads import figure3_graph


def main():
    alphas = (0.1, 0.3, 0.5, 0.7, 0.9, 1.0)
    schemes = tuple(PAPER_SCHEMES) + ("ORACLE",)

    for model in ("transmeta", "xscale"):
        cfg = RunConfig(schemes=schemes, power_model=model,
                        n_processors=2, n_runs=300, seed=2002)
        series = sweep_alpha(figure3_graph, cfg, load=0.9,
                             alphas=alphas, name=f"alpha-study-{model}")
        print(render_series(series))
        print(render_speed_changes(series))

        # headline numbers
        lo, hi = alphas[0], alphas[-1]
        gss_gain = (series.get(hi, "GSS").mean
                    - series.get(lo, "GSS").mean)
        print(f"[{model}] GSS normalized energy rises by "
              f"{gss_gain:+.3f} from α={lo} to α={hi} "
              f"(run-time slack disappears)\n")

        for a in (0.5,):
            gap = (series.get(a, "GSS").mean
                   - series.get(a, "ORACLE").mean)
            print(f"[{model}] at α={a}, GSS is {gap:+.3f} above the "
                  f"clairvoyant single-speed bound\n")


if __name__ == "__main__":
    main()
