#!/usr/bin/env python
"""Mission-level analysis: frame streams, slack anatomy, energy bounds.

Goes beyond the paper's per-instance evaluation to what an adopter asks:

1. *where does the saving come from?* — decompose the slack sources
   (static vs path vs run-time) with `repro.analysis.slack`;
2. *does my application parallelize?* — work/span metrics per execution
   path with `repro.analysis.critical`;
3. *how close to optimal are we?* — the continuous clairvoyant bound
   per realization with `repro.analysis.bounds`;
4. *what does a mission cost?* — a 200-frame ATR stream under every
   scheme, with response-time jitter.

Run:  python examples/mission_analysis.py
"""

import numpy as np

from repro.analysis import (
    continuous_uniform_bound,
    graph_metrics,
    npm_energy,
    slack_profile,
)
from repro.offline import build_plan
from repro.sim import sample_realization
from repro.workloads import (
    AtrConfig,
    application_with_load,
    atr_graph,
    compare_streams,
    render_stream_report,
    worst_case_length,
)
from repro.power import transmeta_model


def main():
    graph = atr_graph(AtrConfig(alpha=0.9))
    app = application_with_load(graph, load=0.5, n_processors=2)
    plan = build_plan(app, 2)
    power = transmeta_model()

    print("=== parallelism (work/span per execution path) ===")
    m = graph_metrics(plan.structure)
    print(f"expected work {m.expected_work:7.2f} ms   "
          f"max {m.max_work:7.2f} ms")
    print(f"expected span {m.expected_span:7.2f} ms   "
          f"max {m.max_span:7.2f} ms")
    print(f"expected parallelism {m.expected_parallelism:.2f} "
          f"-> effective processors of 2: "
          f"{m.effective_processors(2):.2f}, of 6: "
          f"{m.effective_processors(6):.2f}")
    print("  (this is why Figure 5's six processors save less: the\n"
          "   application cannot keep them busy)\n")

    print("=== slack anatomy at load 0.5 ===")
    prof = slack_profile(plan)
    print(f"deadline            {prof.deadline:8.2f} ms")
    print(f"static slack        {prof.static_slack:8.2f} ms "
          f"({prof.static_fraction:.0%} of D) -> SPM's material")
    print(f"expected path slack {prof.expected_path_slack:8.2f} ms "
          f"-> OR branches skipping work")
    print(f"expected run-time   {prof.expected_runtime_slack:8.2f} ms "
          f"-> actual < WCET (α = 0.9 keeps this small)\n")

    print("=== distance to the clairvoyant continuous bound ===")
    rng = np.random.default_rng(42)
    gaps = []
    for _ in range(200):
        rl = sample_realization(plan.structure, rng)
        bound = continuous_uniform_bound(plan, power, rl)
        base = npm_energy(plan, power, rl)
        gaps.append(bound / base)
    print(f"bound/NPM over 200 realizations: "
          f"mean {np.mean(gaps):.3f}, min {np.min(gaps):.3f}, "
          f"max {np.max(gaps):.3f}")
    print("  (compare to the schemes' ~0.5: the residual gap is level\n"
          "   quantization, S_min and switch overhead)\n")

    print("=== 200-frame ATR mission (period = deadline) ===")
    period = worst_case_length(graph, 2) / 0.5
    results = compare_streams(graph, period,
                              ["NPM", "SPM", "GSS", "SS1", "SS2", "AS"],
                              n_frames=200, power_model="transmeta",
                              n_processors=2, seed=7)
    print(render_stream_report(results))


if __name__ == "__main__":
    main()
