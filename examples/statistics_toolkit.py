#!/usr/bin/env python
"""The statistics toolkit: beyond mean curves.

The paper reports mean normalized energies; this example shows the
machinery for digging deeper on one configuration (the Figure 3 app at
load 0.6 on the XScale model):

1. **exact path enumeration** — the per-execution-path energies behind
   the mean (why GSS's distribution is multi-modal);
2. **path-conditional Monte-Carlo** — the same decomposition observed
   empirically, with per-path frequencies converging to the branch
   probabilities;
3. **distributions** — percentiles and a histogram per scheme;
4. **paired significance** — which scheme differences are real
   (paired t-tests on shared realizations);
5. **misprofiling regret** — what inaccurate branch probabilities cost
   each scheme (spoiler: the greedy scheme has nothing to be wrong
   about, and speculation is protected by its GSS floor).

Run:  python examples/statistics_toolkit.py
"""

from repro.experiments import (
    RunConfig,
    compare_all,
    evaluate_application,
    exact_evaluation,
    misprofile_evaluation,
    render_comparison,
    render_distributions,
    render_exact,
    render_histogram,
    render_misprofile,
    result_distributions,
)
from repro.workloads import application_with_load, figure3_graph


def main():
    app = application_with_load(figure3_graph(), 0.6, 2)
    cfg = RunConfig(power_model="xscale", n_runs=800, seed=2002)

    print("=== 1. exact path enumeration ===")
    exact = exact_evaluation(app, cfg)
    print(render_exact(exact))

    print("=== 2. path-conditional Monte-Carlo ===")
    result = evaluate_application(app, cfg)
    freq = result.path_frequencies()
    cond = result.conditional_normalized("GSS")
    print(f"{'path':>20} {'p(exact)':>9} {'p(observed)':>12} "
          f"{'GSS mean':>9}")
    for key, prob in sorted(exact.path_probability.items(),
                            key=lambda kv: -kv[1]):
        obs = freq.get(key, 0.0)
        mean = cond[key].mean() if key in cond else float("nan")
        print(f"{key:>20} {prob:>9.3f} {obs:>12.3f} {mean:>9.3f}")
    print()

    print("=== 3. distributions ===")
    print(render_distributions(result_distributions(result)))
    print(render_histogram("GSS", result.normalized["GSS"], bins=12))

    print("=== 4. paired significance ===")
    print(render_comparison(compare_all(
        result, schemes=["GSS", "SS1", "SS2", "AS"])))

    print("=== 5. misprofiling regret ===")
    quick = cfg.with_(n_runs=300)
    results = {g: misprofile_evaluation(figure3_graph(), 0.6, quick, g)
               for g in (-2.0, 0.25, 4.0)}
    print(render_misprofile(results))
    print("(γ<0 inverts the branch likelihoods — even then the regret "
          "is bounded\n by the GSS guarantee floor; GSS and SPM are "
          "exactly zero by design)")


if __name__ == "__main__":
    main()
