#!/usr/bin/env python
"""ATR case study: the paper's motivating application, end to end.

Automated target recognition processes one frame per deadline; the
number of regions of interest (ROIs) varies per frame, so most frames
skip a large part of the worst-case work.  This example:

1. builds the ATR AND/OR graph and prints its structure,
2. shows how the offline profile captures the per-ROI-count paths,
3. traces one frame under GSS and prints the Gantt chart,
4. sweeps the frame deadline (load) and prints the Figure 4-style
   series for both processor models.

Run:  python examples/atr_pipeline.py
"""

from repro.experiments import RunConfig, render_series, sweep_load
from repro.graph import enumerate_paths, validate_graph
from repro.offline import build_plan
from repro.sim.trace import render_gantt, trace_one_run
from repro.workloads import AtrConfig, application_with_load, atr_graph


def main():
    cfg = AtrConfig(max_rois=4, n_templates=8, alpha=0.9)
    graph = atr_graph(cfg)
    structure = validate_graph(graph)

    print("=== ATR application structure ===")
    print(f"nodes: {len(graph)} ({len(graph.computation_nodes())} tasks, "
          f"{len(graph.and_nodes())} AND, {len(graph.or_nodes())} OR)")
    for path in enumerate_paths(structure):
        tasks = [n for sid in path.sections
                 for n in structure.section(sid).nodes
                 if graph.node(n).is_computation]
        print(f"  path p={path.probability:4.2f}: {len(tasks):2d} tasks "
              f"({', '.join(tasks[:4])}{'...' if len(tasks) > 4 else ''})")

    app = application_with_load(graph, load=0.5, n_processors=2)
    plan = build_plan(app, 2)
    print(f"\nper-frame deadline D = {app.deadline:.2f} ms "
          f"(worst case {plan.t_worst:.2f} ms, "
          f"average {plan.t_avg:.2f} ms)")
    print("remaining-work profile at the ROI-count OR node:")
    for target, stats in plan.branch_stats["O_roi"].items():
        k = structure.section(target).nodes[0]
        print(f"  branch {k:<12} worst {stats.worst:6.2f}  "
              f"avg {stats.average:6.2f}")

    print("\n=== one frame under GSS (Transmeta) ===")
    result = trace_one_run(app, "GSS", power_model="transmeta", seed=5)
    print(render_gantt(result, app.deadline, width=90))

    print("=== load sweep (Figure 4 shape), 300 runs/point ===")
    for model in ("transmeta", "xscale"):
        run_cfg = RunConfig(power_model=model, n_processors=2,
                            n_runs=300, seed=2002)
        series = sweep_load(graph, run_cfg,
                            loads=(0.2, 0.4, 0.6, 0.8, 1.0),
                            name=f"atr-{model}")
        print(render_series(series))


if __name__ == "__main__":
    main()
