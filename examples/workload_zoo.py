#!/usr/bin/env python
"""Scheme comparison across the workload zoo.

Runs every application family in :mod:`repro.workloads.library` (plus
the paper's two) through the same evaluation and prints a matrix of
normalized energies — which scheme wins depends on the workload's OR
variability and parallelism, as the paper's analysis predicts:

* workloads with strong OR variability (radar, packets) reward the
  adaptive scheme;
* symmetric parallel workloads (fusion, ATR) leave little between the
  dynamic schemes;
* everything beats SPM once there is run-time slack to reclaim.

Run:  python examples/workload_zoo.py
"""

from repro.analysis import graph_metrics
from repro.experiments import RunConfig, evaluate_application
from repro.graph import validate_graph
from repro.workloads import (
    LIBRARY,
    application_with_load,
    atr_graph,
    figure3_graph,
)

SCHEMES = ("SPM", "GSS", "SS1", "SS2", "AS", "PS")


def main():
    apps = dict(LIBRARY)
    apps["atr"] = atr_graph
    apps["fig3"] = figure3_graph

    cfg = RunConfig(schemes=SCHEMES, power_model="transmeta",
                    n_processors=2, n_runs=400, seed=2002)

    print(f"{'workload':>9} {'par':>5} {'paths':>5} | " +
          " ".join(f"{s:>6}" for s in SCHEMES))
    print("-" * (9 + 5 + 5 + 4 + 7 * len(SCHEMES)))
    for name, fn in sorted(apps.items()):
        graph = fn()
        st = validate_graph(graph)
        m = graph_metrics(st)
        app = application_with_load(graph, 0.6, 2)
        result = evaluate_application(app, cfg)
        means = result.mean_normalized()
        from repro.graph import enumerate_paths
        n_paths = len(enumerate_paths(st))
        row = " ".join(f"{means[s]:6.3f}" for s in SCHEMES)
        print(f"{name:>9} {m.expected_parallelism:5.2f} "
              f"{n_paths:5d} | {row}")

    print("\n(normalized energy at load 0.6, Transmeta, m=2, "
          "400 runs/cell; lower is better)")


if __name__ == "__main__":
    main()
