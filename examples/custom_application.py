#!/usr/bin/env python
"""Model your own application: loops, JSON persistence, DOT export.

Shows the modelling toolbox on a video-decoder-like pipeline:

* a probabilistic loop (variable number of macroblock passes) expanded
  into pure AND/OR structure per Section 2.1 of the paper,
* an OR branch on frame type (I-frame vs P-frame) with profile
  probabilities,
* JSON round-trip (store the model next to your configs),
* Graphviz export (render with `dot -Tpng`),
* scheme evaluation on the custom model.

Run:  python examples/custom_application.py
"""

from repro import GraphBuilder, RunConfig, evaluate_application
from repro.graph import (
    average_iterations,
    dumps,
    expand_loop,
    loads,
    simple_body,
    to_dot,
    validate_graph,
)
from repro.workloads import application_with_load


def build_decoder_graph():
    b = GraphBuilder("video-decoder")
    b.task("parse_header", 2, 1.5)

    # frame-type branch: 20% I-frames (heavy), 80% P-frames (light)
    b.or_node("O_type", after=["parse_header"])
    b.task("i_transform", 12, 9, after=["O_type"])
    b.probability("O_type", "i_transform", 0.20)
    b.task("p_motion", 6, 3, after=["O_type"])
    b.probability("O_type", "p_motion", 0.80)

    # P-frames run a variable number of refinement passes
    refine_probs = {1: 0.6, 2: 0.3, 3: 0.1}
    p_exit = expand_loop(b, "refine", refine_probs,
                         simple_body("refine", 3, 2), after=["p_motion"])
    b.task("p_reconstruct", 4, 2.5, after=[p_exit])

    b.or_merge("O_done", ["i_transform", "p_reconstruct"])
    b.task("render", 3, 2, after=["O_done"])
    g = b.build_graph()
    print(f"expected refinement passes: "
          f"{average_iterations(refine_probs):.2f}")
    return g


def main():
    graph = build_decoder_graph()
    structure = validate_graph(graph)
    print(f"decoder model: {len(graph)} nodes, "
          f"{len(structure.sections)} program sections\n")

    # persist and reload: the on-disk form is reviewable JSON
    app = application_with_load(graph, load=0.6, n_processors=2)
    text = dumps(app)
    app2 = loads(text)
    assert app2.deadline == app.deadline
    print(f"JSON round-trip OK ({len(text)} bytes)")

    dot = to_dot(graph)
    print(f"DOT export: {dot.count('->')} edges "
          f"(pipe into `dot -Tpng` to render)\n")

    cfg = RunConfig(power_model="xscale", n_runs=400, seed=1)
    result = evaluate_application(app, cfg)
    print("mean normalized energy, frame deadline at load 0.6 (XScale):")
    for scheme, mean in sorted(result.mean_normalized().items(),
                               key=lambda kv: kv[1]):
        print(f"  {scheme:>5}: {mean:.3f} "
              f"(avg {result.mean_speed_changes()[scheme]:.1f} switches)")


if __name__ == "__main__":
    main()
